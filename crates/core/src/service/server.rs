//! The daemon: accept loop, per-connection handlers, lifecycle.
//!
//! One [`Server`] owns one [`SweepStore`] (behind a mutex — record I/O
//! is cheap next to engine runs), one [`MissExecutor`], and one
//! [`ServiceMetrics`]. Each accepted connection gets a handler thread
//! that serves requests until the peer hangs up; concurrent handlers
//! share the store and executor, which is exactly the situation the
//! executor's claim protocol exists for. A compaction pass runs at
//! startup and after every sweep submission, under the store lock.
//!
//! Shutdown is cooperative: a [`Request::Shutdown`] frame flips the stop
//! flag, is acknowledged with [`Response::ShuttingDown`], and the
//! handler then dials the server's own listen address once so the
//! blocking `accept` wakes up, observes the flag, and returns. The
//! accept loop then closes the **read** half of every open connection —
//! handlers idling in a blocked read see EOF and return, while a
//! handler mid-answer keeps its write half and still delivers its
//! response. Handler threads are joined before [`Server::serve`]
//! returns, so a clean shutdown means every in-flight sweep has been
//! answered and persisted.

use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::store::SweepStore;

use super::aggregate::aggregate;
use super::compaction::{compact, CompactionPolicy};
use super::executor::{MissExecutor, ServiceMetrics};
use super::protocol::{ProtocolError, QueryReply, Request, Response, StatusReply, SweepDone};
use super::wire::{read_request, write_response};
use super::ServiceError;

/// Daemon knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker override for miss execution, as in
    /// [`crate::runner::run_batch_with`].
    pub workers: Option<usize>,
    /// Store GC policy (startup + post-sweep passes).
    pub compaction: CompactionPolicy,
}

/// Where the daemon listens.
enum Listener {
    #[cfg(unix)]
    Unix {
        listener: UnixListener,
        path: PathBuf,
    },
    Tcp {
        listener: TcpListener,
        addr: SocketAddr,
    },
}

/// State shared by the accept loop and every handler thread.
struct Shared {
    store: Mutex<SweepStore>,
    executor: MissExecutor,
    metrics: Arc<ServiceMetrics>,
    compaction: CompactionPolicy,
    stop: AtomicBool,
}

impl Shared {
    /// Run one GC pass and fold its report into the counters.
    fn compact_store(&self) {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        if let Ok(report) = compact(&mut store, self.compaction) {
            self.metrics.compactions.fetch_add(1, Ordering::SeqCst);
            self.metrics
                .compacted_bytes
                .fetch_add(report.reclaimed_bytes, Ordering::SeqCst);
            self.metrics
                .evicted_records
                .fetch_add(report.evicted, Ordering::SeqCst);
        }
    }

    /// Answer one request (the pure part of the handler loop).
    fn answer(&self, request: &Request) -> Response {
        self.metrics.requests.fetch_add(1, Ordering::SeqCst);
        match request {
            Request::SubmitSweep(spec) => {
                let sweep = match spec.resolve() {
                    Ok(sweep) => sweep,
                    Err(msg) => return Response::Error(format!("bad sweep spec: {msg}")),
                };
                match self.executor.run_sweep(&self.store, &sweep) {
                    Ok(outcome) => {
                        self.compact_store();
                        Response::SweepDone(SweepDone {
                            report: outcome.report,
                            results: outcome.results,
                        })
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Query(spec) => {
                self.metrics.queries.fetch_add(1, Ordering::SeqCst);
                let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
                match aggregate(&mut store, spec) {
                    Ok(table) => Response::QueryDone(QueryReply {
                        table: table.render_text(),
                        rows: table.rows.len() as u64,
                        missing: table.missing,
                    }),
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Status => Response::Status(StatusReply {
                counters: self.metrics.counters(),
            }),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }
}

/// A bound, not-yet-serving daemon.
pub struct Server {
    shared: Arc<Shared>,
    listener: Listener,
}

impl Server {
    fn new(store: SweepStore, config: ServerConfig, listener: Listener) -> Self {
        let metrics = Arc::new(ServiceMetrics::new());
        Server {
            shared: Arc::new(Shared {
                store: Mutex::new(store),
                executor: MissExecutor::new(Arc::clone(&metrics), config.workers),
                metrics,
                compaction: config.compaction,
                stop: AtomicBool::new(false),
            }),
            listener,
        }
    }

    /// Bind a Unix-domain socket at `path` (removing any stale socket
    /// file first — the daemon owns its rendezvous path).
    #[cfg(unix)]
    pub fn bind_unix(
        store: SweepStore,
        config: ServerConfig,
        path: impl Into<PathBuf>,
    ) -> Result<Self, ServiceError> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path).map_err(|e| ServiceError::Protocol(e.into()))?;
        }
        let listener = UnixListener::bind(&path).map_err(|e| ServiceError::Protocol(e.into()))?;
        Ok(Server::new(
            store,
            config,
            Listener::Unix { listener, path },
        ))
    }

    /// Bind a TCP socket (use port 0 to let the OS pick).
    pub fn bind_tcp(
        store: SweepStore,
        config: ServerConfig,
        addr: &str,
    ) -> Result<Self, ServiceError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Protocol(e.into()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServiceError::Protocol(e.into()))?;
        Ok(Server::new(store, config, Listener::Tcp { listener, addr }))
    }

    /// The bound TCP address (`None` on a Unix socket).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp { addr, .. } => Some(*addr),
            #[cfg(unix)]
            Listener::Unix { .. } => None,
        }
    }

    /// The daemon's metrics (shared with the executor).
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Serve until a [`Request::Shutdown`] frame arrives. Runs the
    /// startup compaction pass, then accepts connections, one handler
    /// thread each; joins every handler before returning.
    pub fn serve(self) -> Result<(), ServiceError> {
        self.shared.compact_store();
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // One read-side closer per accepted stream, so shutdown can
        // unblock handlers parked in a read without cutting off a
        // response still being written.
        let mut closers: Vec<Box<dyn Fn() + Send>> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match &self.listener {
                #[cfg(unix)]
                Listener::Unix { listener, path } => match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(reader) = stream.try_clone() {
                            closers.push(Box::new(move || {
                                let _ = reader.shutdown(std::net::Shutdown::Read);
                            }));
                        }
                        let shared = Arc::clone(&self.shared);
                        let wake = path.clone();
                        handlers.push(std::thread::spawn(move || {
                            handle_connection(&shared, stream, &Wake::Unix(wake));
                        }));
                    }
                    Err(_) => break,
                },
                Listener::Tcp { listener, addr } => match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(reader) = stream.try_clone() {
                            closers.push(Box::new(move || {
                                let _ = reader.shutdown(std::net::Shutdown::Read);
                            }));
                        }
                        let shared = Arc::clone(&self.shared);
                        let wake = *addr;
                        handlers.push(std::thread::spawn(move || {
                            handle_connection(&shared, stream, &Wake::Tcp(wake));
                        }));
                    }
                    Err(_) => break,
                },
            }
        }
        for closer in &closers {
            closer();
        }
        for handler in handlers {
            let _ = handler.join();
        }
        #[cfg(unix)]
        if let Listener::Unix { path, .. } = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// How a handler pokes the accept loop awake after a shutdown request.
enum Wake {
    #[cfg(unix)]
    Unix(PathBuf),
    Tcp(SocketAddr),
}

impl Wake {
    fn poke(&self) {
        match self {
            #[cfg(unix)]
            Wake::Unix(path) => drop(UnixStream::connect(path)),
            Wake::Tcp(addr) => drop(TcpStream::connect(addr)),
        }
    }
}

/// Serve one connection until EOF, a protocol error, or shutdown.
fn handle_connection<S: std::io::Read + std::io::Write>(
    shared: &Shared,
    mut stream: S,
    wake: &Wake,
) {
    loop {
        let request = match read_request(&mut stream) {
            Ok(request) => request,
            Err(ProtocolError::Io(_)) => return, // peer hung up
            Err(e) => {
                // A malformed frame gets a typed error back; the
                // connection is then unusable (framing is lost).
                let _ = write_response(&mut stream, &Response::Error(e.to_string()));
                return;
            }
        };
        let stopping = matches!(request, Request::Shutdown);
        let response = shared.answer(&request);
        let wrote = write_response(&mut stream, &response).is_ok();
        if stopping {
            // Poke even when the ack failed to send: the stop flag is
            // already set and the accept loop must wake either way.
            wake.poke();
            return;
        }
        if !wrote {
            return;
        }
    }
}
