//! `pwrperfd` — the long-running sweep service over [`SweepStore`].
//!
//! The batch runner and result cache make one-shot invocations cheap,
//! but every figure still pays process startup and runs alone. This
//! module turns the store into a *shared* resource: a daemon that holds
//! one [`crate::store::SweepStore`] open, serves cache hits concurrently
//! to any number of clients, drains misses through a work-stealing
//! executor built on the batch runner, and answers ED²P/wED²P
//! aggregation queries server-side — so a warm store answers the whole
//! figure suite with **zero** engine executions (see DESIGN.md §17).
//!
//! The pieces:
//!
//! * [`protocol`] — request/response frames ([`Request`], [`Response`])
//!   and the wire-level [`SweepSpec`] that names grids by workload /
//!   strategy / fault / topology strings, so client and daemon agree on
//!   fingerprints by construction;
//! * [`wire`] — the length-prefixed, versioned, checksummed framing
//!   (the store codec idiom on a socket), with typed [`ProtocolError`];
//! * [`server`] — the accept loop (Unix or TCP), one handler thread per
//!   connection, `service.*` counters;
//! * [`executor`] — the miss executor: in-flight dedupe keyed by
//!   fingerprint, so a miss being computed for one client is *awaited*,
//!   never re-executed, by every other client that wants it;
//! * [`compaction`] — store GC: drop version-skewed and corrupt
//!   records, migrate legacy flat records into their shard, and bound
//!   total store size;
//! * [`aggregate`] — the store-only query layer (group-by workload ×
//!   strategy × topology → ED²P/wED²P tables rendered server-side);
//! * [`client`] — the blocking client the CLI and tests drive.

pub mod aggregate;
pub mod client;
pub mod compaction;
pub mod executor;
pub mod protocol;
pub mod server;
pub mod wire;

pub use aggregate::{aggregate, AggregateRow, AggregateTable};
pub use client::Client;
pub use compaction::{compact, CompactionPolicy, CompactionReport};
pub use executor::{MissExecutor, ServiceMetrics};
pub use protocol::{
    ProtocolError, QueryReply, Request, Response, StatusReply, SweepDone, SweepSpec,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};

use crate::store::StoreError;

/// Why a service operation failed (the client-visible error sum).
#[derive(Debug)]
pub enum ServiceError {
    /// The wire protocol broke (I/O, framing, version skew, decode).
    Protocol(ProtocolError),
    /// The store refused a read or write.
    Store(StoreError),
    /// A sweep spec failed to resolve (unknown workload/strategy name,
    /// bad fault or topology spec).
    Spec(String),
    /// An experiment failed on every attempt (panicked in the engine).
    Failed(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServiceError::Store(e) => write!(f, "store error: {e}"),
            ServiceError::Spec(msg) => write!(f, "bad sweep spec: {msg}"),
            ServiceError::Failed(msg) => write!(f, "experiment failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Protocol(e) => Some(e),
            ServiceError::Store(e) => Some(e),
            ServiceError::Spec(_) | ServiceError::Failed(_) => None,
        }
    }
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::Protocol(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}
