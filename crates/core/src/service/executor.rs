//! The miss executor: in-flight dedupe over a shared [`SweepStore`].
//!
//! Any number of handler threads can submit overlapping sweeps. Hits
//! stream straight from the store; each missing fingerprint is *claimed*
//! by exactly one thread (which executes it on the work-stealing batch
//! runner) while every other thread that wants the same result parks on
//! the in-flight slot and is handed the result when it lands. The
//! invariant — checked by the concurrency tests — is that the total
//! number of engine executions equals the number of unique missing
//! fingerprints, no matter how requests interleave.
//!
//! The claim protocol closes the obvious races:
//!
//! 1. **claim** — lock the in-flight map; an existing slot means another
//!    thread owns the execution: wait on it. Otherwise insert a slot —
//!    this thread owns it.
//! 2. **recheck** — after claiming, probe the store again. The previous
//!    owner persists *before* it unclaims, so a fingerprint absent from
//!    the map is either truly new or already on disk; the recheck
//!    converts the latter into a hit instead of a second execution.
//! 3. **publish** — execution results (including failures — a panicking
//!    experiment publishes an error, never a hang) are persisted, then
//!    published to waiters, then unclaimed, in that order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mpi_sim::RunResult;

use crate::runner::{checked_map_with, BatchPolicy};
use crate::store::{Fingerprint, SweepStore};
use crate::sweep::{duplicate_map, Sweep, SweepOutcome, SweepReport};

use super::ServiceError;

/// Daemon-lifetime counters, exported as `service.*` on [`Request::Status`].
///
/// [`Request::Status`]: super::Request::Status
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests accepted (any kind).
    pub requests: AtomicU64,
    /// Sweep submissions handled.
    pub sweeps: AtomicU64,
    /// Aggregation queries handled.
    pub queries: AtomicU64,
    /// Results served from the store (incl. post-claim rechecks).
    pub hits: AtomicU64,
    /// Missing fingerprints this daemon claimed and executed.
    pub misses: AtomicU64,
    /// Results obtained by waiting on another request's execution.
    pub awaited: AtomicU64,
    /// Engine executions actually performed.
    pub engine_runs: AtomicU64,
    /// Claims currently being executed (gauge).
    pub inflight: AtomicU64,
    /// High-water mark of `inflight`.
    pub inflight_peak: AtomicU64,
    /// Claimed jobs accepted but not yet started (gauge).
    pub queue_depth: AtomicU64,
    /// Compaction passes completed.
    pub compactions: AtomicU64,
    /// Bytes reclaimed by compaction (dropped + evicted records).
    pub compacted_bytes: AtomicU64,
    /// Valid records evicted by the store-size bound.
    pub evicted_records: AtomicU64,
}

impl ServiceMetrics {
    /// A zeroed counter set.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Raise `inflight` by one and fold the new value into the peak.
    fn inflight_enter(&self) {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.inflight_peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Snapshot every counter as `(name, value)`, sorted by name — the
    /// payload of a status reply.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = [
            ("service.awaited", &self.awaited),
            ("service.compacted_bytes", &self.compacted_bytes),
            ("service.compactions", &self.compactions),
            ("service.engine_runs", &self.engine_runs),
            ("service.evicted_records", &self.evicted_records),
            ("service.hits", &self.hits),
            ("service.inflight", &self.inflight),
            ("service.inflight_peak", &self.inflight_peak),
            ("service.misses", &self.misses),
            ("service.queries", &self.queries),
            ("service.queue_depth", &self.queue_depth),
            ("service.requests", &self.requests),
            ("service.sweeps", &self.sweeps),
        ]
        .iter()
        .map(|(name, counter)| ((*name).to_string(), counter.load(Ordering::SeqCst)))
        .collect();
        out.sort();
        out
    }

    /// Fold the current counter values into an [`obs::MetricsRegistry`]
    /// under their `service.*` names, so daemon telemetry exports
    /// through the same registry surface as everything else.
    pub fn export_to(&self, registry: &mut obs::MetricsRegistry) {
        for (name, value) in self.counters() {
            registry.counter_add_owned(name, value);
        }
    }
}

/// One in-flight execution: waiters park on `ready` until `result` is
/// published. A failed execution publishes `Err` — waiters never hang.
struct InflightSlot {
    result: Mutex<Option<Result<RunResult, String>>>,
    ready: Condvar,
}

impl InflightSlot {
    fn new() -> Self {
        InflightSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<RunResult, String>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<RunResult, String> {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// How a planned unique job will be satisfied.
enum JobSource {
    /// Loaded from the store (or recheck) during planning.
    Hit(Box<RunResult>),
    /// This request owns the execution.
    Claimed,
    /// Another request owns it; park on the slot.
    Awaited(Arc<InflightSlot>),
}

/// The shared miss executor (one per daemon).
pub struct MissExecutor {
    inflight: Mutex<BTreeMap<Fingerprint, Arc<InflightSlot>>>,
    metrics: Arc<ServiceMetrics>,
    /// Worker override for the batch runner, as in
    /// [`crate::runner::run_batch_with`].
    workers: Option<usize>,
}

impl MissExecutor {
    /// A fresh executor publishing into `metrics`.
    pub fn new(metrics: Arc<ServiceMetrics>, workers: Option<usize>) -> Self {
        MissExecutor {
            inflight: Mutex::new(BTreeMap::new()),
            metrics,
            workers,
        }
    }

    /// The metrics sink this executor reports into.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Fingerprints currently claimed (for tests and status).
    pub fn inflight_len(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Run `sweep` against the shared store: hits from disk, misses
    /// claimed-or-awaited as described in the module docs. Returns the
    /// same row-major results a direct [`Sweep::run`] would produce.
    pub fn run_sweep(
        &self,
        store: &Mutex<SweepStore>,
        sweep: &Sweep,
    ) -> Result<SweepOutcome, ServiceError> {
        self.metrics.sweeps.fetch_add(1, Ordering::SeqCst);
        let experiments = sweep.experiments();
        let fingerprints: Vec<Fingerprint> = experiments
            .iter()
            .map(crate::store::fingerprint_experiment)
            .collect();
        let duplicate_of = duplicate_map(&fingerprints);
        let duplicate_jobs = duplicate_of.iter().filter(|d| d.is_some()).count() as u64;

        // Plan each unique cell: hit, claim, or await.
        let mut sources: Vec<Option<JobSource>> = Vec::with_capacity(experiments.len());
        let mut hits = 0u64;
        for (i, &fp) in fingerprints.iter().enumerate() {
            if duplicate_of.get(i).is_some_and(|d| d.is_some()) {
                sources.push(None);
                continue;
            }
            let cached = {
                let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
                store.load(fp).ok().flatten()
            };
            if let Some(result) = cached {
                hits += 1;
                sources.push(Some(JobSource::Hit(Box::new(result))));
                continue;
            }
            sources.push(Some(self.claim_or_await(store, fp, &mut hits)));
        }

        // Execute every claim on the work-stealing batch runner.
        let claimed: Vec<usize> = sources
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Some(JobSource::Claimed)))
            .map(|(i, _)| i)
            .collect();
        let engine_runs = claimed.len() as u64;
        self.metrics.misses.fetch_add(engine_runs, Ordering::SeqCst);
        self.metrics
            .queue_depth
            .fetch_add(engine_runs, Ordering::SeqCst);
        let to_run: Vec<&crate::experiment::Experiment> =
            claimed.iter().map(|&i| &experiments[i]).collect();
        let policy = BatchPolicy {
            workers: self.workers,
            ..BatchPolicy::default()
        };
        let fresh = checked_map_with(
            &to_run,
            |experiment| {
                self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
                self.metrics.inflight_enter();
                let result = experiment.run();
                self.metrics.inflight.fetch_sub(1, Ordering::SeqCst);
                self.metrics.engine_runs.fetch_add(1, Ordering::SeqCst);
                result
            },
            policy,
        );

        // Persist, publish, unclaim — in that order (see module docs).
        let mut first_error: Option<ServiceError> = None;
        let mut slots: Vec<Option<RunResult>> = vec![None; experiments.len()];
        for (&i, outcome) in claimed.iter().zip(fresh) {
            let fp = fingerprints[i];
            let published = match outcome {
                Ok(result) => {
                    let stored = {
                        let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
                        store.store(fp, &result)
                    };
                    if let Err(e) = stored {
                        if first_error.is_none() {
                            first_error = Some(ServiceError::Store(e));
                        }
                    }
                    Ok(result)
                }
                Err(e) => {
                    // An execution that panicked through its whole retry
                    // budget still publishes: waiters get the error, not
                    // a deadlock.
                    if first_error.is_none() {
                        first_error = Some(ServiceError::Failed(e.to_string()));
                    }
                    Err(e.to_string())
                }
            };
            let slot = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                inflight.remove(&fp)
            };
            if let Some(slot) = slot.as_ref() {
                slot.publish(published.clone());
            }
            if let Ok(result) = published {
                slots[i] = Some(result);
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }

        // Collect hits and awaited results; fill duplicates last.
        for (i, source) in sources.into_iter().enumerate() {
            match source {
                Some(JobSource::Hit(result)) => slots[i] = Some(*result),
                Some(JobSource::Awaited(slot)) => match slot.wait() {
                    Ok(result) => slots[i] = Some(result),
                    Err(msg) => return Err(ServiceError::Failed(msg)),
                },
                Some(JobSource::Claimed) | None => {}
            }
        }
        for (i, dup) in duplicate_of.iter().enumerate() {
            if let Some(primary) = dup {
                slots[i] = slots.get(*primary).cloned().flatten();
            }
        }
        let results: Vec<RunResult> = slots.into_iter().flatten().collect();
        if results.len() != experiments.len() {
            return Err(ServiceError::Failed(format!(
                "sweep produced {} of {} results",
                results.len(),
                experiments.len()
            )));
        }

        let awaited = experiments.len() as u64 - hits - engine_runs - duplicate_jobs;
        self.metrics.hits.fetch_add(hits, Ordering::SeqCst);
        self.metrics.awaited.fetch_add(awaited, Ordering::SeqCst);
        let report = SweepReport {
            jobs: experiments.len() as u64,
            // Awaited results executed elsewhere; from this request's
            // point of view they are hits (it ran nothing for them).
            cache_hits: hits + awaited,
            cache_misses: engine_runs,
            engine_runs,
            corrupt_records: 0,
            bytes_read: 0,
            bytes_written: 0,
            duplicate_jobs,
        };
        Ok(SweepOutcome { results, report })
    }

    /// Step 1+2 of the claim protocol for one missing fingerprint.
    fn claim_or_await(
        &self,
        store: &Mutex<SweepStore>,
        fp: Fingerprint,
        hits: &mut u64,
    ) -> JobSource {
        {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = inflight.get(&fp) {
                return JobSource::Awaited(Arc::clone(slot));
            }
            inflight.insert(fp, Arc::new(InflightSlot::new()));
        }
        // Recheck: the previous owner persists before it unclaims, so
        // anything that finished between our miss and our claim is on
        // disk now.
        let rechecked = {
            let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
            store.load(fp).ok().flatten()
        };
        if let Some(result) = rechecked {
            let slot = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                inflight.remove(&fp)
            };
            if let Some(slot) = slot.as_ref() {
                slot.publish(Ok(result.clone()));
            }
            *hits += 1;
            return JobSource::Hit(Box::new(result));
        }
        JobSource::Claimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::DvsStrategy;
    use crate::workload::Workload;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pwrperf-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_sweep(strategies: Vec<DvsStrategy>) -> Sweep {
        Sweep::grid(vec![Workload::ft_test(2)], strategies, vec![], vec![])
    }

    #[test]
    fn cold_then_warm_through_the_executor() {
        let dir = tmp_dir("warm");
        let store = Mutex::new(SweepStore::open(&dir).unwrap());
        let metrics = Arc::new(ServiceMetrics::new());
        let executor = MissExecutor::new(Arc::clone(&metrics), Some(2));
        let sweep = tiny_sweep(vec![
            DvsStrategy::StaticMhz(600),
            DvsStrategy::StaticMhz(800),
        ]);

        let cold = executor.run_sweep(&store, &sweep).unwrap();
        assert_eq!(cold.report.engine_runs, 2);
        assert_eq!(cold.report.cache_hits, 0);

        let warm = executor.run_sweep(&store, &sweep).unwrap();
        assert_eq!(warm.report.engine_runs, 0, "warm store executes nothing");
        assert_eq!(warm.report.cache_hits, 2);
        assert_eq!(warm.results, cold.results, "bit-identical replay");
        assert_eq!(metrics.engine_runs.load(Ordering::SeqCst), 2);
        assert_eq!(executor.inflight_len(), 0, "no claims leak");

        let mut registry = obs::MetricsRegistry::new();
        metrics.export_to(&mut registry);
        assert_eq!(registry.counter("service.engine_runs"), Some(2));
        assert_eq!(registry.counter("service.hits"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_overlapping_sweeps_execute_each_cell_once() {
        let dir = tmp_dir("concurrent");
        let store = Mutex::new(SweepStore::open(&dir).unwrap());
        let metrics = Arc::new(ServiceMetrics::new());
        let executor = MissExecutor::new(Arc::clone(&metrics), Some(2));
        // 3 unique cells; every thread submits the same grid.
        let sweep = tiny_sweep(vec![
            DvsStrategy::StaticMhz(600),
            DvsStrategy::StaticMhz(800),
            DvsStrategy::StaticMhz(1000),
        ]);

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|| executor.run_sweep(&store, &sweep).unwrap()));
            }
            let outcomes: Vec<SweepOutcome> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for outcome in &outcomes {
                assert_eq!(outcome.results, outcomes[0].results, "all threads agree");
                assert_eq!(
                    outcome.report.cache_hits
                        + outcome.report.engine_runs
                        + outcome.report.duplicate_jobs,
                    outcome.report.jobs
                );
            }
        });
        assert_eq!(
            metrics.engine_runs.load(Ordering::SeqCst),
            3,
            "every unique fingerprint executes exactly once across all threads"
        );
        assert_eq!(executor.inflight_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
