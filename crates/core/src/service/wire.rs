//! Length-prefixed, versioned, checksummed framing over any byte stream.
//!
//! The store codec idiom (DESIGN.md §12), lifted onto a socket: every
//! frame is
//!
//! ```text
//! magic "PWRD" | version u32 LE | kind u8 | payload_len u64 LE
//!   | payload bytes | checksum64(payload) u64 LE
//! ```
//!
//! A torn write, a version-skewed peer, or a stray process scribbling
//! on the socket all surface as a typed [`ProtocolError`] — never a
//! hang, a huge allocation, or decoded garbage. The checksum uses the
//! same salted [`checksum64`] as store records, so frame integrity and
//! record integrity share one primitive.

use std::io::{Read, Write};

use crate::store::checksum64;

use super::protocol::{ProtocolError, Request, Response, PROTOCOL_VERSION};

/// Frame header magic: "PWRD" (PoWeR Daemon).
pub const FRAME_MAGIC: [u8; 4] = *b"PWRD";

/// Upper bound on a frame payload. Sweep replies carry full
/// [`mpi_sim::RunResult`]s, so this is generous — but a corrupted
/// length field must fail typed, not drive a multi-gigabyte allocation.
pub const MAX_PAYLOAD_BYTES: u64 = 256 * 1024 * 1024;

/// Write one frame: header, payload, trailing checksum. The whole frame
/// is assembled in memory and written with a single `write_all`, so a
/// well-behaved transport never exposes a half-written header.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), ProtocolError> {
    let mut frame = Vec::with_capacity(4 + 4 + 1 + 8 + payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&checksum64(payload).to_le_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame; returns the kind byte and verified payload.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>), ProtocolError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::Version { found: version });
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let [kind] = kind;
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::TooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    if u64::from_le_bytes(checksum) != checksum64(&payload) {
        return Err(ProtocolError::Checksum);
    }
    Ok((kind, payload))
}

/// Write a [`Request`] as one frame.
pub fn write_request<W: Write>(w: &mut W, request: &Request) -> Result<(), ProtocolError> {
    write_frame(w, request.kind(), &request.encode_payload())
}

/// Read a [`Request`] frame.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, ProtocolError> {
    let (kind, payload) = read_frame(r)?;
    Request::decode(kind, &payload)
}

/// Write a [`Response`] as one frame.
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> Result<(), ProtocolError> {
    write_frame(w, response.kind(), &response.encode_payload())
}

/// Read a [`Response`] frame.
pub fn read_response<R: Read>(r: &mut R) -> Result<Response, ProtocolError> {
    let (kind, payload) = read_frame(r)?;
    Response::decode(kind, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::protocol::SweepSpec;

    fn round_trip_request(request: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, request).unwrap();
        read_request(&mut &buf[..]).unwrap()
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let spec = SweepSpec {
            workloads: vec!["ft-test4".into()],
            strategies: vec!["cpuspeed".into()],
            deltas: vec![0.5],
            ..SweepSpec::default()
        };
        for request in [
            Request::SubmitSweep(spec.clone()),
            Request::Query(spec),
            Request::Status,
            Request::Shutdown,
        ] {
            assert_eq!(round_trip_request(&request), request);
        }
        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Error("nope".into())).unwrap();
        let back = read_response(&mut &buf[..]).unwrap();
        assert_eq!(back, Response::Error("nope".into()));
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Shutdown).unwrap();
        for cut in 0..buf.len() {
            let err = read_request(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Io(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_wherever_it_lands() {
        let mut pristine = Vec::new();
        write_request(&mut pristine, &Request::Status).unwrap();
        for byte in 0..pristine.len() {
            let mut buf = pristine.clone();
            buf[byte] ^= 0x55;
            let result = read_request(&mut &buf[..]);
            assert!(result.is_err(), "flip at byte {byte} was not detected");
        }
    }

    #[test]
    fn version_skew_and_oversize_are_typed() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Status).unwrap();
        let mut skewed = buf.clone();
        skewed[4..8].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        assert!(matches!(
            read_request(&mut &skewed[..]),
            Err(ProtocolError::Version { found }) if found == PROTOCOL_VERSION + 1
        ));
        let mut huge = buf;
        huge[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_request(&mut &huge[..]),
            Err(ProtocolError::TooLarge { len: u64::MAX })
        ));
    }
}
