//! Store GC: validate, migrate, and bound the on-disk cache.
//!
//! A long-lived daemon cannot let its store grow without limit or keep
//! serving records a format bump has orphaned. A compaction pass walks
//! every record (sharded and legacy flat) and enforces three invariants:
//!
//! 1. **Validity** — records that fail validation (corrupt bytes,
//!    version skew, undecodable payload, a filename that is not a
//!    fingerprint) are deleted. They would never be served anyway: the
//!    load path rejects them and re-runs, so dropping them only reclaims
//!    bytes, never information.
//! 2. **Layout** — valid records sitting flat in the store root (the
//!    pre-sharding layout) are migrated into their two-hex-digit shard
//!    directory, so the legacy read-through path shrinks toward empty.
//! 3. **Size** — when a byte budget is set and the store exceeds it,
//!    valid records are evicted in reverse-lexicographic fingerprint
//!    order until the store fits. Fingerprints are uniformly distributed
//!    hashes, so this order is arbitrary-but-deterministic: every
//!    compaction pass on every replica picks the same victims.
//!
//! Stale `*.tmp` writer droppings (a crashed process mid-`store`) are
//! swept as well. Compaction holds the store lock in the daemon, so a
//! pass never races a write through the same store handle.

use std::fs;
use std::path::{Path, PathBuf};

use crate::store::{Fingerprint, StoreError, SweepStore};

/// What a compaction pass is allowed to do.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionPolicy {
    /// Evict valid records (reverse-lexicographic fingerprint order)
    /// until total record bytes fit under this budget. `None` keeps
    /// every valid record.
    pub max_store_bytes: Option<u64>,
}

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records examined.
    pub scanned: u64,
    /// Valid records still present after the pass.
    pub kept: u64,
    /// Invalid records deleted (corrupt, version skew, bad name).
    pub dropped: u64,
    /// Valid legacy flat records moved into their shard directory.
    pub migrated: u64,
    /// Valid records deleted by the size bound.
    pub evicted: u64,
    /// Stale `*.tmp` files swept.
    pub stale_tmp: u64,
    /// Bytes reclaimed (dropped + evicted + swept tmp files).
    pub reclaimed_bytes: u64,
    /// Record bytes remaining on disk.
    pub live_bytes: u64,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// One valid record found by the scan.
struct LiveRecord {
    fingerprint: Fingerprint,
    path: PathBuf,
    bytes: u64,
}

/// Run one compaction pass over `store` (see module docs for the
/// invariants). The caller serializes passes against writes by holding
/// whatever lock guards the store.
pub fn compact(
    store: &mut SweepStore,
    policy: CompactionPolicy,
) -> Result<CompactionReport, StoreError> {
    let mut report = CompactionReport::default();
    let mut live: Vec<LiveRecord> = Vec::new();

    for path in store.record_files()? {
        report.scanned += 1;
        let fingerprint = path
            .file_stem()
            .and_then(|stem| stem.to_str())
            .and_then(Fingerprint::from_hex);
        let Some(fingerprint) = fingerprint else {
            report.dropped += 1;
            report.reclaimed_bytes += remove_counting(&path)?;
            continue;
        };
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        if SweepStore::validate_and_decode(&path, &bytes, fingerprint).is_err() {
            report.dropped += 1;
            report.reclaimed_bytes += remove_counting(&path)?;
            continue;
        }
        let len = bytes.len() as u64;
        let final_path = if path.parent() == Some(store.dir()) {
            // Valid legacy flat record: migrate into its shard.
            let sharded = store.record_path(fingerprint);
            if sharded.exists() {
                // Already migrated (or re-stored) — the flat copy is
                // redundant; whichever record the sharded path holds is
                // validated on its own scan visit.
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                report.migrated += 1;
                continue;
            }
            if let Some(shard) = sharded.parent() {
                fs::create_dir_all(shard).map_err(|e| io_err(shard, e))?;
            }
            fs::rename(&path, &sharded).map_err(|e| io_err(&path, e))?;
            report.migrated += 1;
            sharded
        } else {
            path
        };
        live.push(LiveRecord {
            fingerprint,
            path: final_path,
            bytes: len,
        });
    }

    report.stale_tmp = sweep_stale_tmp(store.dir(), &mut report.reclaimed_bytes)?;

    // Size bound: evict largest-fingerprint-first until under budget.
    let mut total: u64 = live.iter().map(|r| r.bytes).sum();
    if let Some(budget) = policy.max_store_bytes {
        live.sort_by_key(|r| r.fingerprint);
        while total > budget {
            let Some(victim) = live.pop() else { break };
            fs::remove_file(&victim.path).map_err(|e| io_err(&victim.path, e))?;
            total -= victim.bytes;
            report.evicted += 1;
            report.reclaimed_bytes += victim.bytes;
        }
    }

    report.kept = live.len() as u64;
    report.live_bytes = total;
    Ok(report)
}

/// Delete `path`, returning how many bytes that reclaimed.
fn remove_counting(path: &Path) -> Result<u64, StoreError> {
    let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    fs::remove_file(path).map_err(|e| io_err(path, e))?;
    Ok(len)
}

/// Sweep `*.tmp` droppings from the store root and its shard dirs.
fn sweep_stale_tmp(dir: &Path, reclaimed: &mut u64) -> Result<u64, StoreError> {
    let mut swept = 0u64;
    let mut dirs = vec![dir.to_path_buf()];
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    for dir in dirs {
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                *reclaimed += remove_counting(&path)?;
                swept += 1;
            }
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::store::fingerprint_experiment;
    use crate::strategy::DvsStrategy;
    use crate::workload::Workload;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pwrperf-compact-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &Path, mhz: &[u32]) -> SweepStore {
        let mut store = SweepStore::open(dir).unwrap();
        for &m in mhz {
            let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(m));
            let result = exp.run();
            store.store(fingerprint_experiment(&exp), &result).unwrap();
        }
        store
    }

    #[test]
    fn drops_corrupt_migrates_legacy_and_sweeps_tmp() {
        let dir = tmp_dir("gc");
        let mut store = seeded_store(&dir, &[600, 800]);
        // Demote one record to the legacy flat layout.
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(600));
        let fp = fingerprint_experiment(&exp);
        fs::rename(store.record_path(fp), store.legacy_record_path(fp)).unwrap();
        // Plant a corrupt record under a plausible name and a stale tmp.
        let bogus = Fingerprint::from_hex("00112233445566778899aabbccddeeff").unwrap();
        let shard = dir.join("00");
        fs::create_dir_all(&shard).unwrap();
        fs::write(
            shard.join("00112233445566778899aabbccddeeff.run"),
            b"not a record",
        )
        .unwrap();
        fs::write(shard.join("junk.12345.0.tmp"), b"crashed writer").unwrap();

        let report = compact(&mut store, CompactionPolicy::default()).unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.migrated, 1);
        assert_eq!(report.stale_tmp, 1);
        assert_eq!(report.evicted, 0);
        assert!(report.reclaimed_bytes > 0);
        assert!(!store.contains(bogus));
        // The migrated record now lives sharded and still loads.
        assert!(store.record_path(fp).exists());
        assert!(!store.legacy_record_path(fp).exists());
        assert!(store.load(fp).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_bound_evicts_deterministically() {
        let dir = tmp_dir("bound");
        let mut store = seeded_store(&dir, &[600, 800, 1000, 1200]);
        let full = compact(&mut store, CompactionPolicy::default()).unwrap();
        assert_eq!(full.kept, 4);
        let budget = full.live_bytes / 2;
        let bounded = compact(
            &mut store,
            CompactionPolicy {
                max_store_bytes: Some(budget),
            },
        )
        .unwrap();
        assert!(bounded.evicted >= 1);
        assert!(bounded.live_bytes <= budget);
        assert_eq!(bounded.kept + bounded.evicted, 4);
        // Survivors are exactly the lexicographically-smallest keys: the
        // victim order is a pure function of the key set, so every
        // replica compacts to the same store.
        let mut all_keys: Vec<String> = [600u32, 800, 1000, 1200]
            .iter()
            .map(|&m| {
                let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(m));
                fingerprint_experiment(&exp).to_hex()
            })
            .collect();
        all_keys.sort();
        all_keys.truncate(bounded.kept as usize);
        let mut names: Vec<String> = store
            .record_files()
            .unwrap()
            .iter()
            .map(|p| p.file_stem().unwrap().to_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, all_keys);
        let _ = fs::remove_dir_all(&dir);
    }
}
