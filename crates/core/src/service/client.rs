//! The blocking client the CLI and tests drive.
//!
//! One [`Client`] holds one connection and speaks strict
//! request/response: every call writes one frame and blocks until the
//! matching reply (or a typed error) comes back. A server-side
//! [`Response::Error`] surfaces as [`ProtocolError::Remote`]; a reply of
//! the wrong kind surfaces as [`ProtocolError::Unexpected`] — the client
//! never guesses.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use super::protocol::{
    ProtocolError, QueryReply, Request, Response, StatusReply, SweepDone, SweepSpec,
};
use super::wire::{read_response, write_request};

/// Object-safe alias for "any byte stream we can speak frames over".
trait Stream: Read + Write {}
impl<T: Read + Write> Stream for T {}

/// A connected service client.
pub struct Client {
    stream: Box<dyn Stream>,
}

impl Client {
    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ProtocolError> {
        let stream = UnixStream::connect(path.as_ref())?;
        Ok(Client {
            stream: Box::new(stream),
        })
    }

    /// Connect over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            stream: Box::new(stream),
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_request(&mut self.stream, request)?;
        match read_response(&mut self.stream)? {
            Response::Error(msg) => Err(ProtocolError::Remote(msg)),
            response => Ok(response),
        }
    }

    /// Submit a sweep; blocks until every cell is served or executed.
    pub fn submit_sweep(&mut self, spec: &SweepSpec) -> Result<SweepDone, ProtocolError> {
        match self.round_trip(&Request::SubmitSweep(spec.clone()))? {
            Response::SweepDone(done) => Ok(done),
            other => Err(ProtocolError::Unexpected {
                wanted: "sweep-done",
                got: other.name(),
            }),
        }
    }

    /// Ask for the ED²P/wED²P aggregation of a grid (store-only).
    pub fn query(&mut self, spec: &SweepSpec) -> Result<QueryReply, ProtocolError> {
        match self.round_trip(&Request::Query(spec.clone()))? {
            Response::QueryDone(reply) => Ok(reply),
            other => Err(ProtocolError::Unexpected {
                wanted: "query-done",
                got: other.name(),
            }),
        }
    }

    /// Fetch the daemon's `service.*` counters.
    pub fn status(&mut self) -> Result<StatusReply, ProtocolError> {
        match self.round_trip(&Request::Status)? {
            Response::Status(status) => Ok(status),
            other => Err(ProtocolError::Unexpected {
                wanted: "status",
                got: other.name(),
            }),
        }
    }

    /// Ask the daemon to exit; returns once it acknowledges.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ProtocolError::Unexpected {
                wanted: "shutting-down",
                got: other.name(),
            }),
        }
    }
}
