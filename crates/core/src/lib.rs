//! # pwrperf — distributed power-performance analysis and optimization
//!
//! The top of the reproduction stack for Ge, Feng and Cameron,
//! *"Improvement of Power-Performance Efficiency for High-End Computing"*
//! (IPPS 2005): a framework to **measure, analyze, and optimize** the
//! energy and time-to-solution of distributed scientific applications
//! under dynamic voltage scaling.
//!
//! ```
//! use pwrperf::{DvsStrategy, Experiment, Workload};
//! use edp_metrics::{best_operating_point, DELTA_HPC};
//!
//! // Run NAS FT (tiny test class) on 4 nodes at a static 800 MHz.
//! let experiment = Experiment::new(
//!     Workload::ft_test(4),
//!     DvsStrategy::StaticMhz(800),
//! );
//! let result = experiment.run();
//! assert!(result.total_energy_j() > 0.0);
//!
//! // Sweep the whole ladder and pick the paper's "HPC best" point.
//! let crescendo = pwrperf::static_crescendo(&Workload::ft_test(4));
//! let best = best_operating_point(&crescendo, DELTA_HPC).unwrap();
//! assert!(best >= 600 && best <= 1400);
//! ```
//!
//! Everything underneath is reachable through the re-exported substrate
//! crates: `cluster-sim` (hardware), `mpi-sim` (runtime + engine), `dvfs`
//! (governors), `powerpack` (measurement), `workloads` (applications),
//! `edp-metrics` (metrics).

pub mod adaptive;
pub mod calibration;
pub mod experiment;
pub mod report;
pub mod runner;
pub mod scope;
pub mod service;
pub mod store;
pub mod strategy;
pub mod sweep;
pub mod workload;

pub use adaptive::{AutoTuneOutcome, AutoTuner};
pub use experiment::{
    cpuspeed_point, crescendo_of, crescendo_with, dynamic_crescendo, ladder_mhz_desc,
    power_cap_default_sample, static_crescendo, Experiment,
};
pub use runner::{
    env_shards, parallel_map, parallel_map_telemetry, parallel_map_telemetry_with, run_batch,
    run_batch_checked, run_batch_checked_with, run_batch_telemetry, run_batch_with, thread_count,
    thread_count_with, BatchPolicy, BatchTelemetry, ExperimentError, SHARDS_ENV, THREADS_ENV,
};
pub use scope::{
    analyze_text, attribution_ndjson, metrics_ndjson, metrics_ndjson_with_meta, perfetto_json,
    stats_text, topology_label, try_analyze_text, AnalyzeError, RunMeta, EXPORT_FORMAT_VERSION,
};
pub use service::{
    aggregate, compact, AggregateRow, AggregateTable, Client, CompactionPolicy, CompactionReport,
    MissExecutor, ProtocolError, QueryReply, Request, Response, Server, ServerConfig, ServiceError,
    ServiceMetrics, StatusReply, SweepDone, SweepSpec, PROTOCOL_VERSION,
};
pub use store::{
    decode_run_result, encode_run_result, fingerprint_experiment, Fingerprint, StoreError,
    StoreStats, SweepStore, STORE_FORMAT_VERSION,
};
pub use strategy::DvsStrategy;
pub use sweep::{
    crescendo_cached, dynamic_crescendo_cached, render_slack_table, static_crescendo_cached,
    BestPoint, SlackRow, Sweep, SweepJob, SweepOutcome, SweepPlan, SweepReport,
};
pub use workload::Workload;

// Convenience re-exports for downstream binaries.
pub use edp_metrics;
pub use mpi_sim::{
    CapPolicy, CausalLog, ClusterController, EngineConfig, Fault, FaultCounts, FaultSpec,
    PowerCapController, RunAttribution, RunResult, Topology, WaitPolicy,
};
