//! Plain-text tables for the figure/table regenerators.

use edp_metrics::{
    best_operating_point, weighted_ed2p, Crescendo, DELTA_ENERGY, DELTA_HPC, DELTA_PERFORMANCE,
};

/// Render a crescendo as the paper's normalized energy/delay series, with
/// the weighted-ED²P column for the HPC weight.
pub fn format_crescendo(title: &str, crescendo: &Crescendo) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:>8} {:>12} {:>10} {:>8} {:>8} {:>12}\n",
        "MHz", "energy(J)", "delay(s)", "E/E0", "D/D0", "wED2P(HPC)"
    ));
    let normalized = crescendo.normalized();
    for (point, (mhz, e_n, d_n)) in crescendo.points().iter().zip(normalized) {
        out.push_str(&format!(
            "{:>8} {:>12.1} {:>10.3} {:>8.3} {:>8.3} {:>12.3}\n",
            mhz,
            point.energy_j,
            point.delay_s,
            e_n,
            d_n,
            weighted_ed2p(e_n, d_n, DELTA_HPC)
        ));
    }
    out
}

/// Render the paper's best-operating-point tables (Tables 1 and 3).
pub fn format_best_points(rows: &[(&str, &Crescendo)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>28} {:>8} {:>8} {:>12}\n",
        "workload", "HPC", "energy", "performance"
    ));
    for (name, crescendo) in rows {
        let pick = |delta| {
            best_operating_point(crescendo, delta)
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        out.push_str(&format!(
            "{:>28} {:>8} {:>8} {:>12}\n",
            name,
            pick(DELTA_HPC),
            pick(DELTA_ENERGY),
            pick(DELTA_PERFORMANCE),
        ));
    }
    out
}

/// Render a strategy-comparison series (the paper's Figures 4 and 5):
/// absolute and normalized energy/delay per labelled strategy, normalized
/// to `reference_label`'s row.
pub fn format_strategy_comparison(
    title: &str,
    rows: &[(String, f64, f64)],
    reference_label: &str,
) -> String {
    let reference = rows
        .iter()
        .find(|(l, _, _)| l == reference_label)
        // simlint: allow(panic-path): report formatting is CLI-side, not engine; a missing reference label is caller misuse worth failing loudly
        .unwrap_or_else(|| panic!("reference row '{reference_label}' missing"));
    let (_, e0, d0) = reference.clone();
    let mut out = String::new();
    out.push_str(&format!("## {title} (reference: {reference_label})\n"));
    out.push_str(&format!(
        "{:>16} {:>12} {:>10} {:>8} {:>8}\n",
        "strategy", "energy(J)", "delay(s)", "E/E0", "D/D0"
    ));
    for (label, e, d) in rows {
        out.push_str(&format!(
            "{:>16} {:>12.1} {:>10.3} {:>8.3} {:>8.3}\n",
            label,
            e,
            d,
            e / e0,
            d / d0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Crescendo {
        let mut c = Crescendo::new();
        c.push(1400, 100.0, 10.0);
        c.push(600, 70.0, 11.0);
        c
    }

    #[test]
    fn crescendo_table_has_all_rows() {
        let s = format_crescendo("test", &sample());
        assert!(s.contains("1400"));
        assert!(s.contains("600"));
        assert!(s.contains("wED2P"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn best_points_table_prints_three_deltas() {
        let c = sample();
        let s = format_best_points(&[("swim", &c)]);
        assert!(s.contains("swim"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn strategy_comparison_normalizes_to_reference() {
        let rows = vec![
            ("stat 1400MHz".to_string(), 100.0, 10.0),
            ("stat 600MHz".to_string(), 70.0, 11.0),
        ];
        let s = format_strategy_comparison("ft", &rows, "stat 1400MHz");
        assert!(s.contains("0.700"));
        assert!(s.contains("1.100"));
    }

    #[test]
    #[should_panic(expected = "reference row")]
    fn missing_reference_panics() {
        format_strategy_comparison("x", &[("a".to_string(), 1.0, 1.0)], "b");
    }
}
