//! The paper's headline numbers, as machine-readable targets.
//!
//! Used by the figure regenerators (to print paper-vs-measured columns),
//! by EXPERIMENTS.md, and by the reproduction tests that assert our
//! crescendos have the paper's *shape* (who wins, roughly by how much,
//! where the crossovers fall) without chasing its exact testbed readings.

/// One (experiment, strategy, operating point) with the paper's reported
/// normalized energy and delay (relative to static 1.4 GHz).
#[derive(Debug, Clone, Copy)]
pub struct PaperTarget {
    /// Which figure/experiment.
    pub experiment: &'static str,
    /// Strategy label as in the figure legend.
    pub strategy: &'static str,
    /// Operating point (MHz), 0 for governor-controlled strategies.
    pub mhz: u32,
    /// Normalized energy the paper reports.
    pub norm_energy: f64,
    /// Normalized delay the paper reports.
    pub norm_delay: f64,
}

/// Every quantitative claim in the paper's Section 4, normalized to the
/// static 1.4 GHz point of the same experiment.
pub fn paper_targets() -> Vec<PaperTarget> {
    vec![
        // Figure 3: FT class B on 8 nodes.
        PaperTarget {
            experiment: "ft_b8",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.655,
            norm_delay: 1.068,
        },
        PaperTarget {
            experiment: "ft_b8",
            strategy: "cpuspeed",
            mhz: 0,
            norm_energy: 0.966,
            norm_delay: 0.988,
        },
        // Figure 4: FT class C on 8 processors.
        PaperTarget {
            experiment: "ft_c8",
            strategy: "stat",
            mhz: 800,
            norm_energy: 0.714,
            norm_delay: 1.042,
        },
        PaperTarget {
            experiment: "ft_c8",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.663,
            norm_delay: 1.099,
        },
        PaperTarget {
            experiment: "ft_c8",
            strategy: "cpuspeed",
            mhz: 0,
            norm_energy: 0.876,
            norm_delay: 1.039,
        },
        PaperTarget {
            experiment: "ft_c8",
            strategy: "dyn",
            mhz: 1400,
            norm_energy: 0.674,
            norm_delay: 1.078,
        },
        PaperTarget {
            experiment: "ft_c8",
            strategy: "dyn",
            mhz: 1000,
            norm_energy: 0.654,
            norm_delay: 1.0871,
        },
        // Figure 5: 12K x 12K transpose on 15 processors.
        PaperTarget {
            experiment: "transpose15",
            strategy: "stat",
            mhz: 800,
            norm_energy: 0.838,
            norm_delay: 1.0078,
        },
        PaperTarget {
            experiment: "transpose15",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.803,
            norm_delay: 1.024,
        },
        PaperTarget {
            experiment: "transpose15",
            strategy: "cpuspeed",
            mhz: 0,
            norm_energy: 0.981,
            norm_delay: 0.9917,
        },
        // Figure 6: memory-bound microbenchmark.
        PaperTarget {
            experiment: "memory_micro",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.593,
            norm_delay: 1.054,
        },
        // Figure 7: CPU-bound (L2) microbenchmark.
        PaperTarget {
            experiment: "cpu_micro",
            strategy: "stat",
            mhz: 600,
            norm_energy: 1.02,
            norm_delay: 2.34,
        },
        PaperTarget {
            experiment: "cpu_micro",
            strategy: "stat",
            mhz: 800,
            norm_energy: 0.90,
            norm_delay: 1.75,
        },
        // Figure 8a: 256 KB round trip.
        PaperTarget {
            experiment: "comm_256k",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.699,
            norm_delay: 1.06,
        },
        // Figure 8b: 4 KB message, 64 B stride.
        PaperTarget {
            experiment: "comm_4k",
            strategy: "stat",
            mhz: 600,
            norm_energy: 0.64,
            norm_delay: 1.04,
        },
    ]
}

/// Look up a target by experiment/strategy/MHz.
pub fn target(experiment: &str, strategy: &str, mhz: u32) -> Option<PaperTarget> {
    paper_targets()
        .into_iter()
        .find(|t| t.experiment == experiment && t.strategy == strategy && t.mhz == mhz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_every_evaluation_figure() {
        let t = paper_targets();
        for exp in [
            "ft_b8",
            "ft_c8",
            "transpose15",
            "memory_micro",
            "cpu_micro",
            "comm_256k",
            "comm_4k",
        ] {
            assert!(t.iter().any(|x| x.experiment == exp), "missing {exp}");
        }
    }

    #[test]
    fn lookup_finds_known_target() {
        let t = target("ft_b8", "stat", 600).unwrap();
        assert!((t.norm_energy - 0.655).abs() < 1e-9);
        assert!(target("ft_b8", "stat", 999).is_none());
    }

    #[test]
    fn all_targets_are_sane() {
        for t in paper_targets() {
            assert!(t.norm_energy > 0.3 && t.norm_energy < 1.2, "{t:?}");
            assert!(t.norm_delay > 0.9 && t.norm_delay < 2.6, "{t:?}");
        }
    }
}
