//! Experiment assembly and crescendo sweeps.

use cluster_sim::{Cluster, NodeConfig};
use edp_metrics::Crescendo;
use mpi_sim::{Engine, EngineConfig, RunResult};
use net_model::NetworkParams;
use power_model::DvfsLadder;

use crate::strategy::DvsStrategy;
use crate::workload::Workload;

/// One workload × strategy run on the paper's testbed (or a customized
/// cluster, for ablations).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// What to run.
    pub workload: Workload,
    /// How to drive DVFS.
    pub strategy: DvsStrategy,
    /// Engine knobs (eager threshold, wait policy, sampling).
    pub engine: EngineConfig,
    /// Node hardware override (default: the Inspiron-8600 model).
    pub node_config: Option<NodeConfig>,
    /// Interconnect override (default: the 100 Mb/s Catalyst).
    pub network: Option<NetworkParams>,
}

impl Experiment {
    /// An experiment with default engine configuration.
    pub fn new(workload: Workload, strategy: DvsStrategy) -> Self {
        Experiment {
            workload,
            strategy,
            engine: EngineConfig::default(),
            node_config: None,
            network: None,
        }
    }

    /// Replace the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Arm deterministic fault injection for this run (see
    /// [`mpi_sim::FaultSpec`]). An empty spec is the default and leaves
    /// the simulation bit-identical to an unfaulted run.
    pub fn with_faults(mut self, faults: mpi_sim::FaultSpec) -> Self {
        self.engine.faults = faults;
        self
    }

    /// Replace the node hardware model (base power, ladder, memory...).
    pub fn with_node_config(mut self, config: NodeConfig) -> Self {
        self.node_config = Some(config);
        self
    }

    /// Replace the interconnect parameters.
    pub fn with_network(mut self, network: NetworkParams) -> Self {
        self.network = Some(network);
        self
    }

    /// Build the cluster, programs, and controller, and run to completion.
    pub fn run(&self) -> RunResult {
        let ranks = self.workload.ranks();
        let cluster = match (&self.node_config, &self.network) {
            // Beyond the testbed's 16 nodes (the ft-scale family), the
            // homogeneous arm replicates the same hardware — identical
            // node and network models, just more of them.
            (None, None) if ranks <= 16 => Cluster::paper_testbed(ranks),
            (node, net) => Cluster::homogeneous(
                ranks,
                node.clone().unwrap_or_else(NodeConfig::inspiron_8600),
                net.clone()
                    .unwrap_or_else(NetworkParams::catalyst_2950_100m),
            ),
        };
        let programs = self
            .workload
            .programs(self.strategy.wants_instrumentation());
        let controller = self.strategy.controller(cluster.nodes());
        let mut engine = self.engine.clone();
        // A power cap replans at sample instants; a capped run without a
        // sampling cadence would boot feasible and never redistribute, so
        // give it the default cap-control interval.
        if matches!(self.strategy, DvsStrategy::PowerCap { .. }) && engine.sample_interval.is_none()
        {
            engine.sample_interval = Some(power_cap_default_sample());
        }
        Engine::with_controller(cluster, programs, controller, engine).run()
    }
}

/// Sampling (and therefore cap-replanning) interval a
/// [`DvsStrategy::PowerCap`] run falls back to when the experiment did
/// not configure one.
pub fn power_cap_default_sample() -> sim_core::SimDuration {
    sim_core::SimDuration::from_millis(10)
}

/// The frequencies of the Pentium-M ladder, fastest first (how the paper
/// orders its crescendo x-axes).
pub fn ladder_mhz_desc() -> Vec<u32> {
    let ladder = DvfsLadder::pentium_m_1400();
    let mut mhz: Vec<u32> = ladder.points().iter().map(|p| p.mhz()).collect();
    mhz.reverse();
    mhz
}

/// Run `workload` at every static operating point and collect the
/// energy-delay crescendo (the paper's "stat" series).
pub fn static_crescendo(workload: &Workload) -> Crescendo {
    crescendo_with(workload, EngineConfig::default(), DvsStrategy::StaticMhz)
}

/// Run `workload` under dynamic control with every base operating point
/// (the paper's "dyn" series).
pub fn dynamic_crescendo(workload: &Workload) -> Crescendo {
    crescendo_with(
        workload,
        EngineConfig::default(),
        DvsStrategy::DynamicBaseMhz,
    )
}

/// Crescendo sweep with a custom engine configuration.
pub fn crescendo_with(
    workload: &Workload,
    engine: EngineConfig,
    make: impl Fn(u32) -> DvsStrategy,
) -> Crescendo {
    crescendo_of(|mhz| Experiment::new(workload.clone(), make(mhz)).with_engine(engine.clone()))
}

/// Fully general crescendo sweep: build any experiment per ladder point.
/// The five runs are independent, so they execute on the parallel batch
/// runner (see [`crate::runner::run_batch`]); results are identical to a
/// sequential sweep.
pub fn crescendo_of(make: impl Fn(u32) -> Experiment) -> Crescendo {
    let ladder = ladder_mhz_desc();
    let experiments: Vec<Experiment> = ladder.iter().map(|&mhz| make(mhz)).collect();
    let results = crate::runner::run_batch(experiments);
    let mut crescendo = Crescendo::new();
    for (mhz, result) in ladder.into_iter().zip(results) {
        crescendo.push(mhz, result.total_energy_j(), result.duration_secs());
    }
    crescendo
}

/// Run `workload` under the cpuspeed daemon and return
/// `(energy_j, delay_s)` — the single leftmost point in the paper's
/// Figures 3–5.
pub fn cpuspeed_point(workload: &Workload) -> (f64, f64) {
    let result = Experiment::new(workload.clone(), DvsStrategy::Cpuspeed).run();
    (result.total_energy_j(), result.duration_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_metrics::{best_operating_point, DELTA_ENERGY, DELTA_PERFORMANCE};
    use powerpack::MicroConfig;

    #[test]
    fn ladder_is_descending_pentium_m() {
        assert_eq!(ladder_mhz_desc(), vec![1400, 1200, 1000, 800, 600]);
    }

    #[test]
    fn experiment_runs_ft_test() {
        let r = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(1400)).run();
        assert!(r.duration_secs() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert_eq!(r.per_node.len(), 4);
    }

    #[test]
    fn static_crescendo_covers_ladder() {
        let micro = Workload::CpuMicro(MicroConfig { passes: 50 });
        let c = static_crescendo(&micro);
        assert_eq!(c.len(), 5);
        let n = c.normalized();
        assert_eq!(n[0].0, 1400);
        // CPU-bound: delay at 600 is (1.4/0.6)x.
        let (_, _, d600) = n[4];
        assert!((d600 - 1.4 / 0.6).abs() < 0.01, "{d600}");
    }

    #[test]
    fn memory_micro_favors_energy_point_cpu_micro_does_not() {
        let mem = static_crescendo(&Workload::MemoryMicro(MicroConfig { passes: 40 }));
        let cpu = static_crescendo(&Workload::CpuMicro(MicroConfig { passes: 40 }));
        assert_eq!(best_operating_point(&mem, DELTA_ENERGY), Some(600));
        // CPU-bound energy bottoms out above the ladder floor.
        let cpu_best_energy = best_operating_point(&cpu, DELTA_ENERGY).unwrap();
        assert!(cpu_best_energy >= 800, "cpu energy best {cpu_best_energy}");
        // Performance always picks 1400.
        assert_eq!(best_operating_point(&mem, DELTA_PERFORMANCE), Some(1400));
    }

    #[test]
    fn dynamic_strategy_instruments_and_runs() {
        let r = Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(1400)).run();
        // Transitions happen: down + restore per fft call.
        assert!(r.transitions.iter().all(|&t| t >= 2), "{:?}", r.transitions);
    }

    #[test]
    fn cpuspeed_point_is_near_full_speed_for_busy_polling() {
        let micro = Workload::CpuMicro(MicroConfig { passes: 30 });
        let (e_cs, d_cs) = cpuspeed_point(&micro);
        let c = static_crescendo(&micro);
        let top = c.points().iter().find(|p| p.mhz == 1400).unwrap();
        assert!((d_cs / top.delay_s - 1.0).abs() < 0.02);
        assert!((e_cs / top.energy_j - 1.0).abs() < 0.05);
    }
}
