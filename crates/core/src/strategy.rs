//! The paper's three distributed DVS strategies (plus extensions).

use cluster_sim::Node;
use dvfs::{
    AppDirectedGovernor, ConservativeGovernor, CpuspeedGovernor, Governor, OnDemandGovernor,
    StaticGovernor,
};
use power_model::DvfsLadder;

/// A cluster-wide DVS strategy (the paper's Section 4 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvsStrategy {
    /// The stock `cpuspeed` daemon on every node, acting independently.
    Cpuspeed,
    /// Static control: all nodes pinned to the given frequency.
    StaticMhz(u32),
    /// Dynamic (application-directed) control with the given base
    /// frequency; instrumented regions drop to the ladder minimum.
    DynamicBaseMhz(u32),
    /// Beyond-the-paper: the kernel `ondemand` policy on every node.
    OnDemand,
    /// Beyond-the-paper: the kernel `conservative` policy (one-step moves
    /// in both directions) on every node.
    Conservative,
}

impl DvsStrategy {
    /// Whether workloads should be built with the PowerPack dynamic-DVS
    /// instrumentation (only the dynamic strategy honors it; building it
    /// in for others would be inert anyway, matching the paper's setup
    /// where the library calls are present but the governor ignores them).
    pub fn wants_instrumentation(&self) -> bool {
        matches!(self, DvsStrategy::DynamicBaseMhz(_))
    }

    /// Instantiate one governor per node.
    pub fn governors(&self, nodes: &[Node]) -> Vec<Box<dyn Governor>> {
        nodes
            .iter()
            .map(|node| -> Box<dyn Governor> {
                let ladder: &DvfsLadder = &node.config().ladder;
                match self {
                    DvsStrategy::Cpuspeed => Box::new(CpuspeedGovernor::stock()),
                    DvsStrategy::StaticMhz(mhz) => {
                        Box::new(StaticGovernor::pinned(ladder.index_for_mhz(*mhz)))
                    }
                    DvsStrategy::DynamicBaseMhz(mhz) => {
                        Box::new(AppDirectedGovernor::with_base(ladder.index_for_mhz(*mhz)))
                    }
                    DvsStrategy::OnDemand => Box::new(OnDemandGovernor::stock()),
                    DvsStrategy::Conservative => Box::new(ConservativeGovernor::stock()),
                }
            })
            .collect()
    }

    /// Report label (matches the paper's figure legends).
    pub fn label(&self) -> String {
        match self {
            DvsStrategy::Cpuspeed => "cpuspeed".to_string(),
            DvsStrategy::StaticMhz(mhz) => format!("stat {mhz}MHz"),
            DvsStrategy::DynamicBaseMhz(mhz) => format!("dyn {mhz}MHz"),
            DvsStrategy::OnDemand => "ondemand".to_string(),
            DvsStrategy::Conservative => "conservative".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(i, NodeConfig::inspiron_8600()))
            .collect()
    }

    #[test]
    fn one_governor_per_node() {
        let ns = nodes(8);
        for strat in [
            DvsStrategy::Cpuspeed,
            DvsStrategy::StaticMhz(800),
            DvsStrategy::DynamicBaseMhz(1400),
            DvsStrategy::OnDemand,
        ] {
            assert_eq!(strat.governors(&ns).len(), 8);
        }
    }

    #[test]
    fn only_dynamic_wants_instrumentation() {
        assert!(DvsStrategy::DynamicBaseMhz(1400).wants_instrumentation());
        assert!(!DvsStrategy::Cpuspeed.wants_instrumentation());
        assert!(!DvsStrategy::StaticMhz(600).wants_instrumentation());
        assert!(!DvsStrategy::OnDemand.wants_instrumentation());
    }

    #[test]
    fn static_governor_resolves_mhz() {
        let ns = nodes(1);
        let mut govs = DvsStrategy::StaticMhz(800).governors(&ns);
        assert_eq!(govs[0].initial(&ns[0]), Some(1));
        let mut govs = DvsStrategy::StaticMhz(1400).governors(&ns);
        assert_eq!(govs[0].initial(&ns[0]), Some(4));
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DvsStrategy::Cpuspeed.label(), "cpuspeed");
        assert_eq!(DvsStrategy::StaticMhz(800).label(), "stat 800MHz");
        assert_eq!(DvsStrategy::DynamicBaseMhz(1000).label(), "dyn 1000MHz");
    }
}
