//! The paper's three distributed DVS strategies (plus extensions).

use cluster_sim::Node;
use dvfs::{
    AppDirectedGovernor, CapPolicy, ClusterController, ConservativeGovernor, CpuspeedGovernor,
    Governor, OnDemandGovernor, PerNodeGovernors, PowerCapController, StaticGovernor,
};
use power_model::DvfsLadder;

/// A cluster-wide DVS strategy (the paper's Section 4 taxonomy, plus the
/// cluster power-budget extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvsStrategy {
    /// The stock `cpuspeed` daemon on every node, acting independently.
    Cpuspeed,
    /// Static control: all nodes pinned to the given frequency.
    StaticMhz(u32),
    /// Dynamic (application-directed) control with the given base
    /// frequency; instrumented regions drop to the ladder minimum.
    DynamicBaseMhz(u32),
    /// Beyond-the-paper: the kernel `ondemand` policy on every node.
    OnDemand,
    /// Beyond-the-paper: the kernel `conservative` policy (one-step moves
    /// in both directions) on every node.
    Conservative,
    /// Beyond-the-paper: a global cluster watt budget enforced at every
    /// sample instant by [`dvfs::PowerCapController`], with the given
    /// division policy.
    PowerCap { watts: u32, policy: CapPolicy },
}

impl DvsStrategy {
    /// Whether workloads should be built with the PowerPack dynamic-DVS
    /// instrumentation (only the dynamic strategy honors it; building it
    /// in for others would be inert anyway, matching the paper's setup
    /// where the library calls are present but the governor ignores them).
    pub fn wants_instrumentation(&self) -> bool {
        matches!(self, DvsStrategy::DynamicBaseMhz(_))
    }

    /// The strategy with any requested frequency snapped to its actual
    /// ladder operating point. `index_for_mhz` clamps to the nearest
    /// point, so `StaticMhz(5000)` *runs* at 1400 MHz; labels and store
    /// fingerprints must describe the resolved point, or identical runs
    /// would miss the cache and legends would lie.
    pub fn resolved(&self, ladder: &DvfsLadder) -> Self {
        match self {
            DvsStrategy::StaticMhz(mhz) => {
                DvsStrategy::StaticMhz(ladder.point(ladder.index_for_mhz(*mhz)).mhz())
            }
            DvsStrategy::DynamicBaseMhz(mhz) => {
                DvsStrategy::DynamicBaseMhz(ladder.point(ladder.index_for_mhz(*mhz)).mhz())
            }
            other => *other,
        }
    }

    /// Instantiate one governor per node.
    pub fn governors(&self, nodes: &[Node]) -> Vec<Box<dyn Governor>> {
        nodes
            .iter()
            .map(|node| -> Box<dyn Governor> {
                let ladder: &DvfsLadder = &node.config().ladder;
                match self {
                    DvsStrategy::Cpuspeed => Box::new(CpuspeedGovernor::stock()),
                    DvsStrategy::StaticMhz(mhz) => {
                        Box::new(StaticGovernor::pinned(ladder.index_for_mhz(*mhz)))
                    }
                    DvsStrategy::DynamicBaseMhz(mhz) => {
                        Box::new(AppDirectedGovernor::with_base(ladder.index_for_mhz(*mhz)))
                    }
                    DvsStrategy::OnDemand => Box::new(OnDemandGovernor::stock()),
                    DvsStrategy::Conservative => Box::new(ConservativeGovernor::stock()),
                    // A power cap is not expressible per node; the top
                    // point stands in when someone asks anyway, and
                    // `controller` is the real instantiation path.
                    DvsStrategy::PowerCap { .. } => Box::new(StaticGovernor::performance()),
                }
            })
            .collect()
    }

    /// Instantiate the run's [`ClusterController`] — the engine's single
    /// strategy dispatch path. Per-node strategies wrap their governors;
    /// the power cap builds its cluster-level controller.
    pub fn controller(&self, nodes: &[Node]) -> Box<dyn ClusterController> {
        match self {
            DvsStrategy::PowerCap { watts, policy } => {
                Box::new(PowerCapController::new(f64::from(*watts), *policy))
            }
            per_node => Box::new(PerNodeGovernors::new(per_node.governors(nodes))),
        }
    }

    /// Parse a CLI/wire strategy name: `static-<mhz>`, `dynamic-<mhz>`,
    /// the three kernel governors, and `cap-<watts>[-uniform|-redist]`
    /// (redistribute being the default policy). The single name
    /// registry — the CLI and the sweep-service protocol (which carries
    /// strategies by name) both resolve through it.
    pub fn parse_name(name: &str) -> Result<DvsStrategy, String> {
        if let Some(mhz) = name.strip_prefix("static-") {
            let mhz: u32 = mhz
                .parse()
                .map_err(|_| format!("bad frequency in '{name}'"))?;
            return Ok(DvsStrategy::StaticMhz(mhz));
        }
        if let Some(mhz) = name.strip_prefix("dynamic-") {
            let mhz: u32 = mhz
                .parse()
                .map_err(|_| format!("bad frequency in '{name}'"))?;
            return Ok(DvsStrategy::DynamicBaseMhz(mhz));
        }
        if let Some(spec) = name.strip_prefix("cap-") {
            let (watts, policy) = match spec.split_once('-') {
                None => (spec, CapPolicy::Redistribute),
                Some((watts, "redist")) => (watts, CapPolicy::Redistribute),
                Some((watts, "uniform")) => (watts, CapPolicy::Uniform),
                Some((_, other)) => {
                    return Err(format!("unknown cap policy '{other}' in '{name}'"))
                }
            };
            let watts: u32 = watts
                .parse()
                .map_err(|_| format!("bad watt budget in '{name}'"))?;
            return Ok(DvsStrategy::PowerCap { watts, policy });
        }
        match name {
            "cpuspeed" => Ok(DvsStrategy::Cpuspeed),
            "ondemand" => Ok(DvsStrategy::OnDemand),
            "conservative" => Ok(DvsStrategy::Conservative),
            other => Err(format!("unknown strategy '{other}' (try `pwrperf list`)")),
        }
    }

    /// Known strategy name patterns (for `pwrperf list` and error hints).
    pub fn names() -> &'static [&'static str] {
        &[
            "static-<mhz>",
            "dynamic-<mhz>",
            "cpuspeed",
            "ondemand",
            "conservative",
            "cap-<watts>[-uniform|-redist]",
        ]
    }

    /// Report label (matches the paper's figure legends). Frequencies are
    /// ladder-resolved first so the label names the point the run
    /// actually executed at.
    pub fn label(&self) -> String {
        match self.resolved(&DvfsLadder::pentium_m_1400()) {
            DvsStrategy::Cpuspeed => "cpuspeed".to_string(),
            DvsStrategy::StaticMhz(mhz) => format!("stat {mhz}MHz"),
            DvsStrategy::DynamicBaseMhz(mhz) => format!("dyn {mhz}MHz"),
            DvsStrategy::OnDemand => "ondemand".to_string(),
            DvsStrategy::Conservative => "conservative".to_string(),
            DvsStrategy::PowerCap { watts, policy } => match policy {
                CapPolicy::Uniform => format!("cap {watts}W uniform"),
                CapPolicy::Redistribute => format!("cap {watts}W redist"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(i, NodeConfig::inspiron_8600()))
            .collect()
    }

    #[test]
    fn names_parse_including_power_caps() {
        assert_eq!(
            DvsStrategy::parse_name("static-800"),
            Ok(DvsStrategy::StaticMhz(800))
        );
        assert_eq!(
            DvsStrategy::parse_name("dynamic-1400"),
            Ok(DvsStrategy::DynamicBaseMhz(1400))
        );
        assert_eq!(
            DvsStrategy::parse_name("cpuspeed"),
            Ok(DvsStrategy::Cpuspeed)
        );
        assert_eq!(
            DvsStrategy::parse_name("cap-80"),
            Ok(DvsStrategy::PowerCap {
                watts: 80,
                policy: CapPolicy::Redistribute
            })
        );
        assert_eq!(
            DvsStrategy::parse_name("cap-100-uniform"),
            Ok(DvsStrategy::PowerCap {
                watts: 100,
                policy: CapPolicy::Uniform
            })
        );
        assert!(DvsStrategy::parse_name("cap-80-bogus").is_err());
        assert!(DvsStrategy::parse_name("static-fast").is_err());
        assert!(DvsStrategy::parse_name("warp-speed").is_err());
    }

    #[test]
    fn one_governor_per_node() {
        let ns = nodes(8);
        for strat in [
            DvsStrategy::Cpuspeed,
            DvsStrategy::StaticMhz(800),
            DvsStrategy::DynamicBaseMhz(1400),
            DvsStrategy::OnDemand,
        ] {
            assert_eq!(strat.governors(&ns).len(), 8);
        }
    }

    #[test]
    fn only_dynamic_wants_instrumentation() {
        assert!(DvsStrategy::DynamicBaseMhz(1400).wants_instrumentation());
        assert!(!DvsStrategy::Cpuspeed.wants_instrumentation());
        assert!(!DvsStrategy::StaticMhz(600).wants_instrumentation());
        assert!(!DvsStrategy::OnDemand.wants_instrumentation());
        assert!(!DvsStrategy::PowerCap {
            watts: 120,
            policy: CapPolicy::Redistribute
        }
        .wants_instrumentation());
    }

    #[test]
    fn static_governor_resolves_mhz() {
        let ns = nodes(1);
        let mut govs = DvsStrategy::StaticMhz(800).governors(&ns);
        assert_eq!(govs[0].initial(&ns[0]), Some(1));
        let mut govs = DvsStrategy::StaticMhz(1400).governors(&ns);
        assert_eq!(govs[0].initial(&ns[0]), Some(4));
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DvsStrategy::Cpuspeed.label(), "cpuspeed");
        assert_eq!(DvsStrategy::StaticMhz(800).label(), "stat 800MHz");
        assert_eq!(DvsStrategy::DynamicBaseMhz(1000).label(), "dyn 1000MHz");
        assert_eq!(
            DvsStrategy::PowerCap {
                watts: 120,
                policy: CapPolicy::Uniform
            }
            .label(),
            "cap 120W uniform"
        );
        assert_eq!(
            DvsStrategy::PowerCap {
                watts: 96,
                policy: CapPolicy::Redistribute
            }
            .label(),
            "cap 96W redist"
        );
    }

    #[test]
    fn resolution_snaps_off_ladder_requests_to_real_points() {
        let ladder = DvfsLadder::pentium_m_1400();
        assert_eq!(
            DvsStrategy::StaticMhz(5000).resolved(&ladder),
            DvsStrategy::StaticMhz(1400)
        );
        assert_eq!(
            DvsStrategy::StaticMhz(950).resolved(&ladder),
            DvsStrategy::StaticMhz(1000)
        );
        assert_eq!(
            DvsStrategy::DynamicBaseMhz(100).resolved(&ladder),
            DvsStrategy::DynamicBaseMhz(600)
        );
        // Already-on-ladder requests are fixed points.
        assert_eq!(
            DvsStrategy::StaticMhz(800).resolved(&ladder),
            DvsStrategy::StaticMhz(800)
        );
        // Labels describe the executed point, not the request.
        assert_eq!(DvsStrategy::StaticMhz(5000).label(), "stat 1400MHz");
        assert_eq!(DvsStrategy::DynamicBaseMhz(1).label(), "dyn 600MHz");
    }

    #[test]
    fn controller_dispatch_covers_every_strategy() {
        let ns = nodes(4);
        for strat in [
            DvsStrategy::Cpuspeed,
            DvsStrategy::StaticMhz(800),
            DvsStrategy::DynamicBaseMhz(1400),
            DvsStrategy::OnDemand,
            DvsStrategy::Conservative,
        ] {
            let c = strat.controller(&ns);
            assert!(!c.wants_runtime_events(), "{}", strat.label());
        }
        let cap = DvsStrategy::PowerCap {
            watts: 100,
            policy: CapPolicy::Redistribute,
        };
        let c = cap.controller(&ns);
        assert!(c.wants_runtime_events());
        assert_eq!(c.name(), "cap 100W redistribute");
    }
}
