//! Parallel execution of independent experiments.
//!
//! A paper-reproduction session runs *many* simulations — a crescendo is
//! five, a figure a dozen, the full figure suite hundreds — and every one
//! is an isolated deterministic state machine. [`run_batch`] fans a batch
//! over OS threads and returns results **in input order**, bit-identical
//! to running the same experiments sequentially:
//!
//! * parallelism is only ever *across* runs — a single simulation is never
//!   split, so its event order (and thus every float) is untouched;
//! * each result lands in the slot of the experiment that produced it,
//!   so batch order is input order regardless of scheduling;
//! * with one worker (or one job) the exact sequential path runs.
//!
//! Worker count comes from [`std::thread::available_parallelism`], clamped
//! to the job count, and can be overridden with the `PWRPERF_THREADS`
//! environment variable (`PWRPERF_THREADS=1` forces sequential execution).

use std::sync::atomic::{AtomicUsize, Ordering};

use mpi_sim::RunResult;

use crate::experiment::Experiment;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "PWRPERF_THREADS";

/// Number of worker threads a batch of `jobs` independent tasks will use:
/// the `PWRPERF_THREADS` override if set (minimum 1), otherwise the
/// machine's available parallelism; never more than `jobs`.
pub fn thread_count(jobs: usize) -> usize {
    if jobs <= 1 {
        return 1;
    }
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let workers = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    workers.min(jobs)
}

/// Run every experiment and return the results in input order.
///
/// Each experiment is a self-contained deterministic simulation, so the
/// output is bit-identical whatever the worker count (asserted by
/// `tests/parallel_runner.rs`).
pub fn run_batch(experiments: Vec<Experiment>) -> Vec<RunResult> {
    parallel_map(&experiments, Experiment::run)
}

/// Map `f` over `items` on [`thread_count`] worker threads, collecting
/// results in input order. Workers claim items through a shared atomic
/// cursor (dynamic load balancing: simulations vary widely in length).
/// A panic in `f` propagates to the caller after the scope unwinds.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every claimed index produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_never_exceeds_jobs() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(3) <= 3);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..8).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 5 {
                panic!("deliberate");
            }
            x
        });
    }
}
