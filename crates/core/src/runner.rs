//! Parallel execution of independent experiments.
//!
//! A paper-reproduction session runs *many* simulations — a crescendo is
//! five, a figure a dozen, the full figure suite hundreds — and every one
//! is an isolated deterministic state machine. [`run_batch`] fans a batch
//! over OS threads and returns results **in input order**, bit-identical
//! to running the same experiments sequentially:
//!
//! * parallelism is only ever *across* runs — a single simulation is never
//!   split, so its event order (and thus every float) is untouched;
//! * each result lands in the slot of the experiment that produced it,
//!   so batch order is input order regardless of scheduling;
//! * with one worker (or one job) the exact sequential path runs.
//!
//! Worker count comes from [`std::thread::available_parallelism`], clamped
//! to the job count; callers can pin it with the `_with` variants'
//! explicit override (tests use this — mutating `PWRPERF_THREADS` from a
//! test races sibling tests reading it), or process-wide with the
//! `PWRPERF_THREADS` environment variable (`PWRPERF_THREADS=1` forces
//! sequential execution).
//!
//! ## Degraded batches
//!
//! Every job runs under `catch_unwind`, so one poisoned experiment can
//! never take down a 500-run figure sweep:
//!
//! * [`run_batch`] / [`parallel_map`] keep the legacy contract — a panic
//!   propagates to the caller — but only after **every** job has run, so
//!   no completed work is discarded mid-batch;
//! * [`run_batch_checked`] converts each panic into a per-slot
//!   [`ExperimentError`] (after the bounded retry of [`BatchPolicy`]),
//!   returning `Err` for exactly the poisoned slots with all other
//!   results intact and in input order.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use mpi_sim::RunResult;
use obs::WallTimer;

use crate::experiment::Experiment;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "PWRPERF_THREADS";

/// Environment variable setting the intra-run shard count (the engine's
/// parallel compute-plan workers) when no `--shards` flag is given.
/// Unlike [`THREADS_ENV`] (which parallelizes *across* independent runs),
/// shards parallelize *inside* one run; results are bit-identical at any
/// shard count.
pub const SHARDS_ENV: &str = "PWRPERF_SHARDS";

/// The `PWRPERF_SHARDS` override, if set to a positive integer.
pub fn env_shards() -> Option<usize> {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The `PWRPERF_THREADS` override, if set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Number of worker threads a batch of `jobs` independent tasks will use:
/// the `PWRPERF_THREADS` override if set (minimum 1), otherwise the
/// machine's available parallelism; never more than `jobs`.
pub fn thread_count(jobs: usize) -> usize {
    thread_count_with(jobs, env_threads())
}

/// [`thread_count`] with the override passed explicitly instead of read
/// from the environment — the pure core, and what tests should use
/// (mutating the process environment from one test races every sibling
/// test that reads it). `None` means "use available parallelism".
pub fn thread_count_with(jobs: usize, override_workers: Option<usize>) -> usize {
    if jobs <= 1 {
        return 1;
    }
    let workers = override_workers.filter(|&n| n >= 1).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    workers.min(jobs)
}

/// Wall-clock execution telemetry for one batch: how many workers ran,
/// what each did, and how well the batch kept them fed. Host-timing only —
/// never feeds simulated results, so determinism is untouched.
#[derive(Debug, Clone, Default)]
pub struct BatchTelemetry {
    /// Worker threads used (1 = sequential path).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Jobs completed by each worker (dynamic load balancing makes these
    /// uneven when job lengths vary).
    pub per_worker_jobs: Vec<usize>,
    /// Time each worker spent inside job closures.
    pub per_worker_busy: Vec<Duration>,
}

impl BatchTelemetry {
    /// Fraction of the batch wall-time each worker spent executing jobs.
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.wall.as_secs_f64();
        self.per_worker_busy
            .iter()
            .map(|b| {
                if wall > 0.0 {
                    (b.as_secs_f64() / wall).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Aggregate time workers sat idle (waiting on the claim cursor or for
    /// the batch to end) — the queue-wait cost of imbalanced job lengths.
    pub fn idle_total(&self) -> Duration {
        let busy: Duration = self.per_worker_busy.iter().sum();
        (self.wall * self.workers as u32).saturating_sub(busy)
    }
}

/// One experiment of a checked batch failed (panicked on every attempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    /// Input-order index of the failed experiment.
    pub index: usize,
    /// How many times it was attempted (1 + retries).
    pub attempts: u32,
    /// The last panic's message, when it carried one.
    pub message: String,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "experiment {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for ExperimentError {}

/// How a checked batch executes.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Worker-thread override; `None` defers to `PWRPERF_THREADS` and
    /// then available parallelism.
    pub workers: Option<usize>,
    /// Sequential re-attempts for a job whose first run panicked, before
    /// its slot becomes `Err`. Simulations are deterministic, so a panic
    /// caused by the experiment itself will simply repeat; the retry
    /// budget exists for host-level transients (allocation failure,
    /// thread-spawn limits) that a rerun can survive.
    pub retries: u32,
    /// Spacing before the first retry. Each further retry doubles it,
    /// saturating at [`BatchPolicy::backoff_max`] — bounded deterministic
    /// backoff, so a host-level transient (fd exhaustion, allocation
    /// pressure) gets breathing room instead of an immediate identical
    /// re-attempt. `Duration::ZERO` (the default, so tests stay fast)
    /// disables spacing entirely.
    pub backoff_base: Duration,
    /// Upper bound on any single retry delay.
    pub backoff_max: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            workers: None,
            retries: 1,
            backoff_base: Duration::ZERO,
            backoff_max: Duration::from_secs(1),
        }
    }
}

impl BatchPolicy {
    /// The delay inserted before retry number `retry` (1-based): an
    /// exponential doubling of [`BatchPolicy::backoff_base`], capped at
    /// [`BatchPolicy::backoff_max`]. Pure and deterministic — the same
    /// policy always produces the same schedule.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        if retry == 0 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        // Cap the shift so the multiplier can't overflow u32 even for
        // absurd retry budgets; backoff_max bounds the result anyway.
        let doublings = retry.saturating_sub(1).min(20);
        let factor = 1u32 << doublings;
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_max, |d| d.min(self.backoff_max))
    }
}

/// A job outcome before panic handling: the value, or the caught payload.
type Caught<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// Best-effort text of a panic payload (`panic!` carries `&str`/`String`).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run every experiment and return the results in input order.
///
/// Each experiment is a self-contained deterministic simulation, so the
/// output is bit-identical whatever the worker count (asserted by
/// `tests/parallel_runner.rs`). A panicking experiment propagates after
/// the whole batch has drained; use [`run_batch_checked`] to get per-slot
/// errors instead.
#[must_use]
pub fn run_batch(experiments: Vec<Experiment>) -> Vec<RunResult> {
    parallel_map(&experiments, Experiment::run)
}

/// [`run_batch`] with an explicit worker-count override (`None` defers to
/// `PWRPERF_THREADS`, then available parallelism).
#[must_use]
pub fn run_batch_with(experiments: Vec<Experiment>, workers: Option<usize>) -> Vec<RunResult> {
    parallel_map_telemetry_with(&experiments, Experiment::run, workers).0
}

/// [`run_batch`] with execution telemetry.
#[must_use]
pub fn run_batch_telemetry(experiments: Vec<Experiment>) -> (Vec<RunResult>, BatchTelemetry) {
    parallel_map_telemetry(&experiments, Experiment::run)
}

/// Run every experiment, converting per-job panics into per-slot errors:
/// one poisoned experiment yields `Err` for its slot only, with every
/// other result intact and in input order. Uses [`BatchPolicy::default`]
/// (environment-driven worker count, one retry); see
/// [`run_batch_checked_with`] to tune either.
#[must_use]
pub fn run_batch_checked(experiments: Vec<Experiment>) -> Vec<Result<RunResult, ExperimentError>> {
    run_batch_checked_with(experiments, BatchPolicy::default())
}

/// [`run_batch_checked`] under an explicit [`BatchPolicy`].
#[must_use]
pub fn run_batch_checked_with(
    experiments: Vec<Experiment>,
    policy: BatchPolicy,
) -> Vec<Result<RunResult, ExperimentError>> {
    checked_map_with(&experiments, |e: &Experiment| e.run(), policy)
}

/// The checked-batch core, generic over the job closure: map `f` over
/// `items` on [`BatchPolicy`]-controlled workers, converting per-job
/// panics into per-slot [`ExperimentError`]s after the policy's bounded
/// retry (with [`BatchPolicy::backoff_delay`] spacing between attempts).
///
/// The `attempts` an error reports is an execution count, not a loop
/// count: it is incremented exactly once per invocation of `f` for that
/// slot, so `attempts == 1 + retries` always matches the number of times
/// the job actually ran (pinned by `checked_attempts_equal_executions`).
#[must_use]
pub fn checked_map_with<T, R, F>(
    items: &[T],
    f: F,
    policy: BatchPolicy,
) -> Vec<Result<R, ExperimentError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count_with(items.len(), policy.workers.or_else(env_threads));
    let (slots, _telemetry) = parallel_map_caught(items, &f, workers);
    slots
        .into_iter()
        .enumerate()
        .map(|(index, first)| {
            let mut last = match first {
                Ok(r) => return Ok(r),
                Err(payload) => payload,
            };
            // One execution has happened (the parallel pass above); each
            // loop iteration performs exactly one more.
            let mut attempts = 1u32;
            while attempts <= policy.retries {
                let delay = policy.backoff_delay(attempts);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempts += 1;
                match catch_unwind(AssertUnwindSafe(|| f(&items[index]))) {
                    Ok(r) => return Ok(r),
                    Err(payload) => last = payload,
                }
            }
            Err(ExperimentError {
                index,
                attempts,
                message: panic_message(last.as_ref()),
            })
        })
        .collect()
}

/// Map `f` over `items` on [`thread_count`] worker threads, collecting
/// results in input order. Workers claim items through a shared atomic
/// cursor (dynamic load balancing: simulations vary widely in length).
/// A panic in `f` propagates to the caller — but only after every job has
/// run, so a crash late in a batch never discards completed work that a
/// `catch_unwind`-wrapping caller could have observed.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_telemetry(items, f).0
}

/// [`parallel_map`] plus a [`BatchTelemetry`] describing how the batch
/// actually executed (per-worker job counts, busy time, utilization).
pub fn parallel_map_telemetry<T, R, F>(items: &[T], f: F) -> (Vec<R>, BatchTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_telemetry_with(items, f, None)
}

/// [`parallel_map_telemetry`] with an explicit worker-count override
/// (`None` defers to `PWRPERF_THREADS`, then available parallelism).
pub fn parallel_map_telemetry_with<T, R, F>(
    items: &[T],
    f: F,
    workers: Option<usize>,
) -> (Vec<R>, BatchTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count_with(items.len(), workers.or_else(env_threads));
    let (slots, telemetry) = parallel_map_caught(items, &f, workers);
    let mut results = Vec::with_capacity(slots.len());
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for slot in slots {
        match slot {
            Ok(r) => results.push(r),
            Err(payload) => {
                // Keep the lowest-index panic: it is what a sequential
                // run would have surfaced.
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    (results, telemetry)
}

/// The worker core: map `f` over `items` on exactly `workers` threads,
/// catching each job's panic in its slot. Workers therefore never die
/// mid-batch — every item is always attempted exactly once here.
fn parallel_map_caught<T, R, F>(
    items: &[T],
    f: &F,
    workers: usize,
) -> (Vec<Caught<R>>, BatchTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let batch_timer = WallTimer::start();
    if workers <= 1 {
        let timer = WallTimer::start();
        let results: Vec<Caught<R>> = items
            .iter()
            .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))))
            .collect();
        let busy = timer.elapsed();
        let telemetry = BatchTelemetry {
            workers: 1,
            jobs: items.len(),
            wall: batch_timer.elapsed(),
            per_worker_jobs: vec![items.len()],
            per_worker_busy: vec![busy],
        };
        return (results, telemetry);
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Caught<R>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut per_worker_jobs = vec![0usize; workers];
    let mut per_worker_busy = vec![Duration::ZERO; workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Caught<R>)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let timer = WallTimer::start();
                        local.push((i, catch_unwind(AssertUnwindSafe(|| f(&items[i])))));
                        busy += timer.elapsed();
                    }
                    (local, busy)
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            // simlint: allow(panic-path): join fails only if a worker died outside catch_unwind; nothing sane to degrade to
            let (local, busy) = handle.join().expect("worker closures catch panics");
            per_worker_jobs[w] = local.len();
            per_worker_busy[w] = busy;
            for (i, r) in local {
                results[i] = Some(r);
            }
        }
    });
    let results: Vec<Caught<R>> = results
        .into_iter()
        // simlint: allow(panic-path): the atomic work-stealing counter claims every index exactly once; a hole is corrupted batch state
        .map(|r| r.expect("every claimed index produces a result"))
        .collect();
    let telemetry = BatchTelemetry {
        workers,
        jobs: items.len(),
        wall: batch_timer.elapsed(),
        per_worker_jobs,
        per_worker_busy,
    };
    (results, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_never_exceeds_jobs() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(3) <= 3);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    fn thread_count_with_explicit_override() {
        assert_eq!(thread_count_with(8, Some(3)), 3);
        assert_eq!(thread_count_with(2, Some(16)), 2, "clamped to jobs");
        assert_eq!(thread_count_with(0, Some(4)), 1);
        assert_eq!(thread_count_with(1, None), 1);
        assert_eq!(thread_count_with(8, Some(0)), thread_count_with(8, None));
        assert!(thread_count_with(1000, None) >= 1);
    }

    #[test]
    fn telemetry_accounts_for_every_job() {
        let items: Vec<u64> = (0..64).collect();
        let (out, t) = parallel_map_telemetry_with(&items, |&x| x + 1, Some(4));
        assert_eq!(out.len(), 64);
        assert_eq!(t.jobs, 64);
        assert_eq!(t.workers, 4);
        assert_eq!(t.per_worker_jobs.len(), t.workers);
        assert_eq!(t.per_worker_busy.len(), t.workers);
        assert_eq!(t.per_worker_jobs.iter().sum::<usize>(), 64);
        assert!(t.utilization().iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn telemetry_sequential_path_uses_one_worker() {
        let items: Vec<u64> = (0..16).collect();
        let (out, t) = parallel_map_telemetry_with(&items, |&x| x * 2, Some(1));
        assert_eq!(out[15], 30);
        assert_eq!(t.workers, 1);
        assert_eq!(t.per_worker_jobs, vec![16]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..8).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 5 {
                panic!("deliberate");
            }
            x
        });
    }

    #[test]
    fn panic_propagates_only_after_all_jobs_ran() {
        // The result-loss regression: a panic at item 5 must not discard
        // the other workers' completed jobs — every item still runs.
        let ran = AtomicUsize::new(0);
        let items: Vec<u64> = (0..8).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_telemetry_with(
                &items,
                |&x| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if x == 5 {
                        panic!("deliberate");
                    }
                    x
                },
                Some(2),
            )
        }));
        assert!(outcome.is_err(), "the panic still propagates");
        assert_eq!(ran.load(Ordering::SeqCst), 8, "no job was abandoned");
    }

    #[test]
    fn lowest_index_panic_wins() {
        // Sequential semantics: the panic a sequential run would hit
        // first is the one the caller sees, whatever thread interleaving.
        let items: Vec<u64> = (0..8).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_telemetry_with(
                &items,
                |&x| {
                    if x >= 3 {
                        panic!("boom at {x}");
                    }
                    x
                },
                Some(4),
            )
        }));
        let payload = outcome.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom at 3");
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain str");
        let p = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn experiment_error_displays_context() {
        let e = ExperimentError {
            index: 3,
            attempts: 2,
            message: "battery".into(),
        };
        let s = e.to_string();
        assert!(s.contains("experiment 3"), "{s}");
        assert!(s.contains("2 attempts"), "{s}");
        assert!(s.contains("battery"), "{s}");
    }

    #[test]
    fn batch_policy_default_is_env_workers_one_retry() {
        let p = BatchPolicy::default();
        assert_eq!(p.workers, None);
        assert_eq!(p.retries, 1);
        assert_eq!(p.backoff_base, Duration::ZERO, "spacing is opt-in");
    }

    #[test]
    fn backoff_schedule_is_deterministic_doubling_capped() {
        let p = BatchPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            ..BatchPolicy::default()
        };
        let schedule: Vec<u64> = (0..=6)
            .map(|k| p.backoff_delay(k).as_millis() as u64)
            .collect();
        assert_eq!(schedule, vec![0, 10, 20, 40, 80, 80, 80]);
        // Disabled by default: every delay is zero whatever the retry.
        let off = BatchPolicy::default();
        assert!((0..100).all(|k| off.backoff_delay(k).is_zero()));
        // Absurd retry numbers stay bounded instead of overflowing.
        assert_eq!(p.backoff_delay(u32::MAX), Duration::from_millis(80));
    }

    #[test]
    fn checked_attempts_equal_executions() {
        // The attempts-accounting audit: the count an ExperimentError
        // reports must equal the number of times the job actually ran,
        // for every retry budget.
        for retries in [0u32, 1, 3] {
            let executions = AtomicUsize::new(0);
            let items = vec![0u32];
            let out = checked_map_with(
                &items,
                |_| -> u32 {
                    executions.fetch_add(1, Ordering::SeqCst);
                    panic!("always fails")
                },
                BatchPolicy {
                    workers: Some(1),
                    retries,
                    ..BatchPolicy::default()
                },
            );
            let err = out[0].as_ref().unwrap_err();
            assert_eq!(err.attempts, 1 + retries, "reported attempts");
            assert_eq!(
                executions.load(Ordering::SeqCst) as u32,
                err.attempts,
                "reported attempts must equal actual executions (retries={retries})"
            );
        }
    }

    #[test]
    fn transient_failure_recovers_within_retry_budget() {
        let executions = AtomicUsize::new(0);
        let items = vec![7u32];
        let out = checked_map_with(
            &items,
            |&x| {
                // First execution panics (a host-level transient); the
                // retry succeeds.
                if executions.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                x * 2
            },
            BatchPolicy {
                workers: Some(1),
                retries: 1,
                ..BatchPolicy::default()
            },
        );
        assert_eq!(out[0].as_ref().unwrap(), &14);
        assert_eq!(executions.load(Ordering::SeqCst), 2);
    }
}
