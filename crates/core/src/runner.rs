//! Parallel execution of independent experiments.
//!
//! A paper-reproduction session runs *many* simulations — a crescendo is
//! five, a figure a dozen, the full figure suite hundreds — and every one
//! is an isolated deterministic state machine. [`run_batch`] fans a batch
//! over OS threads and returns results **in input order**, bit-identical
//! to running the same experiments sequentially:
//!
//! * parallelism is only ever *across* runs — a single simulation is never
//!   split, so its event order (and thus every float) is untouched;
//! * each result lands in the slot of the experiment that produced it,
//!   so batch order is input order regardless of scheduling;
//! * with one worker (or one job) the exact sequential path runs.
//!
//! Worker count comes from [`std::thread::available_parallelism`], clamped
//! to the job count, and can be overridden with the `PWRPERF_THREADS`
//! environment variable (`PWRPERF_THREADS=1` forces sequential execution).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use mpi_sim::RunResult;
use obs::WallTimer;

use crate::experiment::Experiment;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "PWRPERF_THREADS";

/// Number of worker threads a batch of `jobs` independent tasks will use:
/// the `PWRPERF_THREADS` override if set (minimum 1), otherwise the
/// machine's available parallelism; never more than `jobs`.
pub fn thread_count(jobs: usize) -> usize {
    if jobs <= 1 {
        return 1;
    }
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let workers = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    workers.min(jobs)
}

/// Wall-clock execution telemetry for one batch: how many workers ran,
/// what each did, and how well the batch kept them fed. Host-timing only —
/// never feeds simulated results, so determinism is untouched.
#[derive(Debug, Clone, Default)]
pub struct BatchTelemetry {
    /// Worker threads used (1 = sequential path).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Jobs completed by each worker (dynamic load balancing makes these
    /// uneven when job lengths vary).
    pub per_worker_jobs: Vec<usize>,
    /// Time each worker spent inside job closures.
    pub per_worker_busy: Vec<Duration>,
}

impl BatchTelemetry {
    /// Fraction of the batch wall-time each worker spent executing jobs.
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.wall.as_secs_f64();
        self.per_worker_busy
            .iter()
            .map(|b| {
                if wall > 0.0 {
                    (b.as_secs_f64() / wall).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Aggregate time workers sat idle (waiting on the claim cursor or for
    /// the batch to end) — the queue-wait cost of imbalanced job lengths.
    pub fn idle_total(&self) -> Duration {
        let busy: Duration = self.per_worker_busy.iter().sum();
        (self.wall * self.workers as u32).saturating_sub(busy)
    }
}

/// Run every experiment and return the results in input order.
///
/// Each experiment is a self-contained deterministic simulation, so the
/// output is bit-identical whatever the worker count (asserted by
/// `tests/parallel_runner.rs`).
pub fn run_batch(experiments: Vec<Experiment>) -> Vec<RunResult> {
    parallel_map(&experiments, Experiment::run)
}

/// [`run_batch`] with execution telemetry.
pub fn run_batch_telemetry(experiments: Vec<Experiment>) -> (Vec<RunResult>, BatchTelemetry) {
    parallel_map_telemetry(&experiments, Experiment::run)
}

/// Map `f` over `items` on [`thread_count`] worker threads, collecting
/// results in input order. Workers claim items through a shared atomic
/// cursor (dynamic load balancing: simulations vary widely in length).
/// A panic in `f` propagates to the caller after the scope unwinds.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_telemetry(items, f).0
}

/// [`parallel_map`] plus a [`BatchTelemetry`] describing how the batch
/// actually executed (per-worker job counts, busy time, utilization).
pub fn parallel_map_telemetry<T, R, F>(items: &[T], f: F) -> (Vec<R>, BatchTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count(items.len());
    let batch_timer = WallTimer::start();
    if workers <= 1 {
        let timer = WallTimer::start();
        let results: Vec<R> = items.iter().map(f).collect();
        let busy = timer.elapsed();
        let telemetry = BatchTelemetry {
            workers: 1,
            jobs: items.len(),
            wall: batch_timer.elapsed(),
            per_worker_jobs: vec![items.len()],
            per_worker_busy: vec![busy],
        };
        return (results, telemetry);
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut per_worker_jobs = vec![0usize; workers];
    let mut per_worker_busy = vec![Duration::ZERO; workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let timer = WallTimer::start();
                        local.push((i, f(&items[i])));
                        busy += timer.elapsed();
                    }
                    (local, busy)
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((local, busy)) => {
                    per_worker_jobs[w] = local.len();
                    per_worker_busy[w] = busy;
                    for (i, r) in local {
                        results[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    let results: Vec<R> = results
        .into_iter()
        .map(|r| r.expect("every claimed index produces a result"))
        .collect();
    let telemetry = BatchTelemetry {
        workers,
        jobs: items.len(),
        wall: batch_timer.elapsed(),
        per_worker_jobs,
        per_worker_busy,
    };
    (results, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_never_exceeds_jobs() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(3) <= 3);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    fn telemetry_accounts_for_every_job() {
        let items: Vec<u64> = (0..64).collect();
        let (out, t) = parallel_map_telemetry(&items, |&x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(t.jobs, 64);
        assert_eq!(t.per_worker_jobs.len(), t.workers);
        assert_eq!(t.per_worker_busy.len(), t.workers);
        assert_eq!(t.per_worker_jobs.iter().sum::<usize>(), 64);
        assert!(t.utilization().iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn telemetry_sequential_path_uses_one_worker() {
        std::env::set_var(THREADS_ENV, "1");
        let items: Vec<u64> = (0..16).collect();
        let (out, t) = parallel_map_telemetry(&items, |&x| x * 2);
        std::env::remove_var(THREADS_ENV);
        assert_eq!(out[15], 30);
        assert_eq!(t.workers, 1);
        assert_eq!(t.per_worker_jobs, vec![16]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..8).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 5 {
                panic!("deliberate");
            }
            x
        });
    }
}
