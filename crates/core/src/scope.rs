//! PowerScope: assembling a run's observability artifacts.
//!
//! The engine produces raw telemetry — a bounded [`TraceEvent`] stream,
//! periodic [`SampleRow`]s, and an optional [`MetricsRegistry`] — and this
//! module turns a finished [`RunResult`] into the three export formats the
//! CLI serves:
//!
//! * [`perfetto_json`] — a Chrome/Perfetto `trace_event` timeline: one
//!   track per node with phase slices and message instants, plus counter
//!   tracks for per-node frequency (from the trace) and per-node/cluster
//!   power (from the samples). Open it at <https://ui.perfetto.dev>.
//! * [`metrics_ndjson`] — the metrics registry as newline-delimited JSON,
//!   one object per metric, sorted by name.
//! * [`stats_text`] — a human-readable run summary for the terminal.
//!
//! All three are deterministic: timestamps come from simulated time
//! rendered with integer math, metric ordering is name-sorted, and no
//! wall-clock value ever reaches an export.
//!
//! Causal runs ([`mpi_sim::EngineConfig::causal`]) add two more:
//!
//! * [`analyze_text`] / [`attribution_ndjson`] — the "blame analysis"
//!   table behind `pwrperf analyze`: critical path, per-rank
//!   compute/comm/blocked split, and the energy attribution;
//! * [`perfetto_json`] grows flow arrows (one per message lifecycle)
//!   when the run carries a causal log.
//!
//! NDJSON exports carry a [`RunMeta`] header record as their first line
//! (`{"meta":{...}}`), identifying the run that produced the file.

use std::fmt::Write as _;

use mpi_sim::{RunResult, Topology};
use obs::{PerfettoTrace, RunAttribution};

/// Format version stamped into every [`RunMeta`] header record. Bump it
/// when the NDJSON line layout changes.
pub const EXPORT_FORMAT_VERSION: u32 = 1;

/// Run identity prepended to NDJSON exports: everything a reader needs
/// to know which configuration produced the file.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Workload label (e.g. `FT.C x1 iter on 256 nodes`).
    pub workload: String,
    /// Strategy label (e.g. `static 1400 MHz`).
    pub strategy: String,
    /// Interconnect shape.
    pub topology: Topology,
    /// Intra-run shard count the run executed with.
    pub shards: usize,
    /// Fault-injection RNG seed (the default seed when no faults armed).
    pub seed: u64,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Typed failure for [`try_analyze_text`]. The blame analysis needs the
/// causal log; a run executed without it must fail loudly and say how to
/// fix the invocation, never panic or print an empty table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The run carries no attribution: it executed without
    /// [`mpi_sim::EngineConfig::causal`], so there is no causal log to
    /// derive blame from.
    CausalAbsent,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::CausalAbsent => write!(
                f,
                "causal log absent: this run executed without causal recording, \
                 so no attribution exists (re-run with --causal, or use \
                 `pwrperf analyze`, which records it automatically)"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Fallible form of [`analyze_text`] taking the whole [`RunResult`]:
/// returns [`AnalyzeError::CausalAbsent`] when the run was executed (or
/// cached) without causal recording instead of panicking on the missing
/// attribution.
pub fn try_analyze_text(
    workload: &str,
    strategy: &str,
    result: &RunResult,
) -> Result<String, AnalyzeError> {
    match &result.attribution {
        Some(attribution) => Ok(analyze_text(workload, strategy, attribution)),
        None => Err(AnalyzeError::CausalAbsent),
    }
}

/// Canonical text form of a topology (the CLI `--topology` syntax).
pub fn topology_label(topology: &Topology) -> String {
    match topology {
        Topology::Flat => "flat".to_string(),
        Topology::FatTree { radix, oversub } => {
            format!("fat-tree:radix={radix},oversub={oversub}")
        }
    }
}

impl RunMeta {
    /// The header record: one JSON object on one line, always the first
    /// line of an NDJSON export.
    pub fn header_line(&self) -> String {
        format!(
            r#"{{"meta":{{"format":{},"workload":"{}","strategy":"{}","topology":"{}","shards":{},"seed":{}}}}}"#,
            EXPORT_FORMAT_VERSION,
            json_escape(&self.workload),
            json_escape(&self.strategy),
            json_escape(&topology_label(&self.topology)),
            self.shards,
            self.seed,
        )
    }
}

/// Render a run as Perfetto `trace_event` JSON.
///
/// Requires the run to have been executed with `trace_capacity > 0` for
/// the timeline tracks; sample-driven power counters additionally need
/// `sample_interval`. Either may be absent — the export degrades to
/// whatever telemetry the run carried. When the run carries a causal
/// log, every message lifecycle additionally becomes a flow arrow from
/// the sender at flow start to the receiver at delivery.
pub fn perfetto_json(result: &RunResult) -> String {
    let nodes = result.per_node.len();
    let mut p = PerfettoTrace::from_trace(&result.trace, nodes);
    for s in &result.samples {
        let mut cluster_w = 0.0;
        for (n, &w) in s.node_power_w.iter().enumerate() {
            p.counter(0, &format!("node {n} W"), s.time, w);
            cluster_w += w;
        }
        p.counter(0, "cluster W", s.time, cluster_w);
    }
    if let Some(log) = &result.causal {
        for (id, m) in log.msgs.iter().enumerate() {
            let Some(delivered) = m.delivered_at else {
                continue;
            };
            let cat = if m.collective { "collective" } else { "msg" };
            let name = format!("{}->{} {}B", m.src, m.dst, m.bytes);
            p.flow_start(0, m.src as u64, cat, &name, id as u64, m.enabled_at());
            p.flow_end(0, m.dst as u64, cat, &name, id as u64, delivered);
        }
    }
    p.finish()
}

/// Render the run's metrics registry as NDJSON (empty string when the run
/// was executed without `metrics` enabled).
pub fn metrics_ndjson(result: &RunResult) -> String {
    result
        .metrics
        .as_ref()
        .map(|m| m.to_ndjson())
        .unwrap_or_default()
}

/// [`metrics_ndjson`] with a [`RunMeta`] header record prepended. The
/// header is written even when the metric body is empty, so a reader can
/// always identify the producing run.
pub fn metrics_ndjson_with_meta(result: &RunResult, meta: &RunMeta) -> String {
    format!("{}\n{}", meta.header_line(), metrics_ndjson(result))
}

/// Render the attribution as NDJSON: the [`RunMeta`] header, one record
/// per rank (times in integer picoseconds — exact, no float rounding —
/// energies in joules), and a closing summary record.
pub fn attribution_ndjson(attribution: &RunAttribution, meta: &RunMeta) -> String {
    let mut out = String::new();
    out.push_str(&meta.header_line());
    out.push('\n');
    for (rank, a) in attribution.ranks.iter().enumerate() {
        let _ = writeln!(
            out,
            r#"{{"rank":{rank},"compute_ps":{},"comm_ps":{},"blocked_ps":{},"cp_residency_ps":{},"finish_ps":{},"compute_j":{:.6},"comm_j":{:.6},"blocked_j":{:.6},"idle_tail_j":{:.6},"slack_j":{:.6},"total_j":{:.6}}}"#,
            a.compute.0,
            a.comm.0,
            a.blocked.0,
            a.cp_residency.0,
            a.finish.0,
            a.compute_j,
            a.comm_j,
            a.blocked_j,
            a.idle_tail_j,
            a.slack_j,
            a.total_j,
        );
    }
    let _ = writeln!(
        out,
        r#"{{"summary":{{"makespan_ps":{},"critical_path_ps":{},"cp_comm_ps":{},"cp_hops":{},"redistributable_j":{:.6}}}}}"#,
        attribution.makespan.0,
        attribution.critical_path.0,
        attribution.cp_comm.0,
        attribution.cp_hops,
        attribution.redistributable_j,
    );
    out
}

/// Render the "blame analysis" table `pwrperf analyze` prints: critical
/// path, per-rank time split (compute / in-flight comm / blocked), local
/// critical-path residency, and the energy attribution with the
/// cluster-level redistributable slack. Pure and deterministic — the CLI
/// prints it and the golden test pins it byte-for-byte.
pub fn analyze_text(workload: &str, strategy: &str, attribution: &RunAttribution) -> String {
    let mut out = String::new();
    out.push_str("== analyze ==\n");
    let _ = writeln!(out, "workload           {workload}");
    let _ = writeln!(out, "strategy           {strategy}");
    let _ = writeln!(
        out,
        "makespan_s         {:.6}",
        attribution.makespan.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "critical_path_s    {:.6}",
        attribution.critical_path.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "cp_comm_s          {:.6} ({} hops, {:.1}% of path)",
        attribution.cp_comm.as_secs_f64(),
        attribution.cp_hops,
        100.0 * attribution.cp_comm.ratio(attribution.critical_path),
    );
    let _ = writeln!(
        out,
        "redistributable_j  {:.3}",
        attribution.redistributable_j
    );
    out.push_str("\n== per-rank attribution ==\n");
    let _ = writeln!(
        out,
        "{:>5} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "rank", "compute_s", "comm_s", "blocked_s", "cp_res_s", "compute_j", "slack_j"
    );
    let mut totals = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (rank, a) in attribution.ranks.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>5} {:>11.6} {:>11.6} {:>11.6} {:>11.6} {:>11.3} {:>11.3}",
            rank,
            a.compute.as_secs_f64(),
            a.comm.as_secs_f64(),
            a.blocked.as_secs_f64(),
            a.cp_residency.as_secs_f64(),
            a.compute_j,
            a.slack_j,
        );
        totals.0 += a.compute.as_secs_f64();
        totals.1 += a.comm.as_secs_f64();
        totals.2 += a.blocked.as_secs_f64();
        totals.3 += a.cp_residency.as_secs_f64();
        totals.4 += a.compute_j;
        totals.5 += a.slack_j;
    }
    let _ = writeln!(
        out,
        "{:>5} {:>11.6} {:>11.6} {:>11.6} {:>11.6} {:>11.3} {:>11.3}",
        "all", totals.0, totals.1, totals.2, totals.3, totals.4, totals.5,
    );
    out
}

/// Render a human-readable summary of the run: headline figures, per-node
/// transition counts, trace accounting, and (when collected) the full
/// metrics table.
pub fn stats_text(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("== run ==\n");
    out.push_str(&format!("duration_s      {:.6}\n", result.duration_secs()));
    out.push_str(&format!("energy_j        {:.3}\n", result.total_energy_j()));
    out.push_str(&format!(
        "avg_power_w     {:.3}\n",
        result.average_power_w()
    ));
    out.push_str(&format!("events          {}\n", result.events));
    out.push_str(&format!("nodes           {}\n", result.per_node.len()));
    out.push_str(&format!(
        "transitions     {}\n",
        result.transitions.iter().sum::<u64>()
    ));
    out.push_str(&format!(
        "trace_events    {} (+{} dropped)\n",
        result.trace.len(),
        result.trace_dropped
    ));
    out.push_str(&format!("samples         {}\n", result.samples.len()));
    if let Some(m) = &result.metrics {
        out.push_str("\n== metrics ==\n");
        out.push_str(&m.render_stats());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvsStrategy, Experiment, Workload};
    use mpi_sim::EngineConfig;

    fn traced_run() -> RunResult {
        let mut e = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800));
        e.engine = EngineConfig {
            trace_capacity: 4096,
            sample_interval: Some(sim_core::SimDuration::from_millis(50)),
            metrics: true,
            ..EngineConfig::default()
        };
        e.run()
    }

    #[test]
    fn perfetto_export_carries_tracks_and_counters() {
        let result = traced_run();
        let json = perfetto_json(&result);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains(r#""name":"node 0""#));
        assert!(json.contains(r#""name":"node 1""#));
        assert!(json.contains(r#""name":"node 0 W""#));
        assert!(json.contains(r#""name":"cluster W""#));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
    }

    #[test]
    fn perfetto_export_is_deterministic() {
        let a = perfetto_json(&traced_run());
        let b = perfetto_json(&traced_run());
        assert_eq!(a, b);
    }

    #[test]
    fn ndjson_sorted_and_gated() {
        let result = traced_run();
        let ndjson = metrics_ndjson(&result);
        let names: Vec<&str> = ndjson
            .lines()
            .map(|l| {
                let start = l.find("\"name\":\"").unwrap() + 8;
                let end = l[start..].find('"').unwrap();
                &l[start..start + end]
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "NDJSON must be name-sorted");
        assert!(ndjson.contains(r#""name":"engine.events.dispatched""#));

        let bare = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800)).run();
        assert!(metrics_ndjson(&bare).is_empty());
    }

    fn causal_run() -> RunResult {
        let mut e = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800));
        e.engine = EngineConfig {
            trace_capacity: 4096,
            metrics: true,
            causal: true,
            ..EngineConfig::default()
        };
        e.run()
    }

    fn meta() -> RunMeta {
        RunMeta {
            workload: "ft-test2".to_string(),
            strategy: "static 800 MHz".to_string(),
            topology: Topology::Flat,
            shards: 1,
            seed: 42,
        }
    }

    #[test]
    fn meta_header_prepends_to_metrics_ndjson() {
        let result = causal_run();
        let with_meta = metrics_ndjson_with_meta(&result, &meta());
        let mut lines = with_meta.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with(r#"{"meta":{"format":1,"#), "{header}");
        assert!(header.contains(r#""workload":"ft-test2""#));
        assert!(header.contains(r#""topology":"flat""#));
        assert!(header.contains(r#""seed":42"#));
        // The body is exactly the unadorned export.
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.join("\n") + "\n", metrics_ndjson(&result));
    }

    #[test]
    fn topology_labels_round_trip_the_cli_syntax() {
        assert_eq!(topology_label(&Topology::Flat), "flat");
        let tree = Topology::FatTree {
            radix: 16,
            oversub: 2.0,
        };
        assert_eq!(topology_label(&tree), "fat-tree:radix=16,oversub=2");
        assert_eq!(Topology::parse(&topology_label(&tree)), Ok(tree));
    }

    #[test]
    fn analyze_text_reports_path_and_per_rank_split() {
        let result = causal_run();
        let a = result.attribution.as_ref().expect("causal run attributes");
        let text = analyze_text("ft-test2", "static 800 MHz", a);
        assert!(text.contains("== analyze =="));
        assert!(text.contains("critical_path_s"));
        assert!(text.contains("redistributable_j"));
        assert!(text.contains("== per-rank attribution =="));
        // One row per rank plus the totals row.
        let rows = text
            .lines()
            .skip_while(|l| !l.starts_with("== per-rank"))
            .skip(2)
            .count();
        assert_eq!(rows, a.ranks.len() + 1);
        // Deterministic render.
        assert_eq!(text, analyze_text("ft-test2", "static 800 MHz", a));
    }

    #[test]
    fn attribution_ndjson_carries_header_ranks_and_summary() {
        let result = causal_run();
        let a = result.attribution.as_ref().unwrap();
        let ndjson = attribution_ndjson(a, &meta());
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), a.ranks.len() + 2, "header + ranks + summary");
        assert!(lines[0].starts_with(r#"{"meta":"#));
        assert!(lines[1].starts_with(r#"{"rank":0,"#));
        assert!(lines.last().unwrap().starts_with(r#"{"summary":"#));
        assert!(lines.last().unwrap().contains("redistributable_j"));
    }

    #[test]
    fn perfetto_flows_appear_only_with_a_causal_log() {
        let causal = perfetto_json(&causal_run());
        assert!(causal.contains(r#""ph":"s""#), "flow starts expected");
        assert!(causal.contains(r#""ph":"f""#), "flow ends expected");
        let plain = perfetto_json(&traced_run());
        assert!(!plain.contains(r#""ph":"s""#));
    }

    #[test]
    fn stats_text_summarizes_run_and_metrics() {
        let result = traced_run();
        let text = stats_text(&result);
        assert!(text.contains("== run =="));
        assert!(text.contains("duration_s"));
        assert!(text.contains("== metrics =="));
        assert!(text.contains("engine.events.dispatched"));
        assert!(text.contains(&format!("events          {}", result.events)));
    }
}
