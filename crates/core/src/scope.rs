//! PowerScope: assembling a run's observability artifacts.
//!
//! The engine produces raw telemetry — a bounded [`TraceEvent`] stream,
//! periodic [`SampleRow`]s, and an optional [`MetricsRegistry`] — and this
//! module turns a finished [`RunResult`] into the three export formats the
//! CLI serves:
//!
//! * [`perfetto_json`] — a Chrome/Perfetto `trace_event` timeline: one
//!   track per node with phase slices and message instants, plus counter
//!   tracks for per-node frequency (from the trace) and per-node/cluster
//!   power (from the samples). Open it at <https://ui.perfetto.dev>.
//! * [`metrics_ndjson`] — the metrics registry as newline-delimited JSON,
//!   one object per metric, sorted by name.
//! * [`stats_text`] — a human-readable run summary for the terminal.
//!
//! All three are deterministic: timestamps come from simulated time
//! rendered with integer math, metric ordering is name-sorted, and no
//! wall-clock value ever reaches an export.

use mpi_sim::RunResult;
use obs::PerfettoTrace;

/// Render a run as Perfetto `trace_event` JSON.
///
/// Requires the run to have been executed with `trace_capacity > 0` for
/// the timeline tracks; sample-driven power counters additionally need
/// `sample_interval`. Either may be absent — the export degrades to
/// whatever telemetry the run carried.
pub fn perfetto_json(result: &RunResult) -> String {
    let nodes = result.per_node.len();
    let mut p = PerfettoTrace::from_trace(&result.trace, nodes);
    for s in &result.samples {
        let mut cluster_w = 0.0;
        for (n, &w) in s.node_power_w.iter().enumerate() {
            p.counter(0, &format!("node {n} W"), s.time, w);
            cluster_w += w;
        }
        p.counter(0, "cluster W", s.time, cluster_w);
    }
    p.finish()
}

/// Render the run's metrics registry as NDJSON (empty string when the run
/// was executed without `metrics` enabled).
pub fn metrics_ndjson(result: &RunResult) -> String {
    result
        .metrics
        .as_ref()
        .map(|m| m.to_ndjson())
        .unwrap_or_default()
}

/// Render a human-readable summary of the run: headline figures, per-node
/// transition counts, trace accounting, and (when collected) the full
/// metrics table.
pub fn stats_text(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str("== run ==\n");
    out.push_str(&format!("duration_s      {:.6}\n", result.duration_secs()));
    out.push_str(&format!("energy_j        {:.3}\n", result.total_energy_j()));
    out.push_str(&format!(
        "avg_power_w     {:.3}\n",
        result.average_power_w()
    ));
    out.push_str(&format!("events          {}\n", result.events));
    out.push_str(&format!("nodes           {}\n", result.per_node.len()));
    out.push_str(&format!(
        "transitions     {}\n",
        result.transitions.iter().sum::<u64>()
    ));
    out.push_str(&format!(
        "trace_events    {} (+{} dropped)\n",
        result.trace.len(),
        result.trace_dropped
    ));
    out.push_str(&format!("samples         {}\n", result.samples.len()));
    if let Some(m) = &result.metrics {
        out.push_str("\n== metrics ==\n");
        out.push_str(&m.render_stats());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvsStrategy, Experiment, Workload};
    use mpi_sim::EngineConfig;

    fn traced_run() -> RunResult {
        let mut e = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800));
        e.engine = EngineConfig {
            trace_capacity: 4096,
            sample_interval: Some(sim_core::SimDuration::from_millis(50)),
            metrics: true,
            ..EngineConfig::default()
        };
        e.run()
    }

    #[test]
    fn perfetto_export_carries_tracks_and_counters() {
        let result = traced_run();
        let json = perfetto_json(&result);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains(r#""name":"node 0""#));
        assert!(json.contains(r#""name":"node 1""#));
        assert!(json.contains(r#""name":"node 0 W""#));
        assert!(json.contains(r#""name":"cluster W""#));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
    }

    #[test]
    fn perfetto_export_is_deterministic() {
        let a = perfetto_json(&traced_run());
        let b = perfetto_json(&traced_run());
        assert_eq!(a, b);
    }

    #[test]
    fn ndjson_sorted_and_gated() {
        let result = traced_run();
        let ndjson = metrics_ndjson(&result);
        let names: Vec<&str> = ndjson
            .lines()
            .map(|l| {
                let start = l.find("\"name\":\"").unwrap() + 8;
                let end = l[start..].find('"').unwrap();
                &l[start..start + end]
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "NDJSON must be name-sorted");
        assert!(ndjson.contains(r#""name":"engine.events.dispatched""#));

        let bare = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800)).run();
        assert!(metrics_ndjson(&bare).is_empty());
    }

    #[test]
    fn stats_text_summarizes_run_and_metrics() {
        let result = traced_run();
        let text = stats_text(&result);
        assert!(text.contains("== run =="));
        assert!(text.contains("duration_s"));
        assert!(text.contains("== metrics =="));
        assert!(text.contains("engine.events.dispatched"));
        assert!(text.contains(&format!("events          {}", result.events)));
    }
}
