//! The registry of workloads the paper evaluates.

use mpi_sim::Program;
use powerpack::{
    comm_roundtrip_programs, cpu_bound_program, memory_bound_program, register_program,
    CommMicroConfig, MicroConfig,
};
use workloads::{
    cg_programs, ft_programs, mg_programs, mgrid_program, swim_program, transpose_programs,
    CgClass, CgConfig, FtClass, FtConfig, MgClass, MgConfig, SpecConfig, TransposeConfig,
};

/// A runnable workload with a fixed rank count.
#[derive(Debug, Clone)]
pub enum Workload {
    /// NAS FT, a class on a power-of-two rank count.
    Ft {
        /// NPB class.
        class: FtClass,
        /// Rank (= node) count.
        ranks: usize,
    },
    /// Scale benchmark: one iteration of class-C FT on a large
    /// power-of-two rank count (256/1024/4096 in `bench.sh scale`).
    FtScale {
        /// Rank (= node) count.
        ranks: usize,
    },
    /// The 12K×12K parallel matrix transpose on 15 processors.
    Transpose {
        /// Transpose iterations.
        iterations: u32,
    },
    /// NAS CG (beyond-the-paper third application).
    Cg {
        /// NPB class.
        class: CgClass,
        /// Rank count.
        ranks: usize,
    },
    /// NAS MG (beyond-the-paper: nearest-neighbour halo pattern).
    Mg {
        /// NPB class.
        class: MgClass,
        /// Rank count.
        ranks: usize,
    },
    /// SPEC CFP2000 swim proxy (1 node).
    Swim,
    /// SPEC CFP2000 mgrid proxy (1 node).
    Mgrid,
    /// PowerPack memory-bound microbenchmark (1 node).
    MemoryMicro(MicroConfig),
    /// PowerPack CPU-bound (L2) microbenchmark (1 node).
    CpuMicro(MicroConfig),
    /// PowerPack register-only microbenchmark (1 node).
    RegisterMicro(MicroConfig),
    /// PowerPack communication ping-pong (2 nodes).
    Comm(CommMicroConfig),
}

impl Workload {
    /// The paper's FT class B on 8 nodes (Figure 3).
    pub fn ft_b8() -> Self {
        Workload::Ft {
            class: FtClass::B,
            ranks: 8,
        }
    }

    /// The paper's FT class C on 8 processors (Figure 4).
    pub fn ft_c8() -> Self {
        Workload::Ft {
            class: FtClass::C,
            ranks: 8,
        }
    }

    /// A tiny FT for tests and doc examples.
    pub fn ft_test(ranks: usize) -> Self {
        Workload::Ft {
            class: FtClass::Test,
            ranks,
        }
    }

    /// One class-C FT iteration on `ranks` nodes (scale benchmarking).
    pub fn ft_scale(ranks: usize) -> Self {
        Workload::FtScale { ranks }
    }

    /// NAS CG class B on 8 nodes (the extension workload).
    pub fn cg_b8() -> Self {
        Workload::Cg {
            class: CgClass::B,
            ranks: 8,
        }
    }

    /// NAS MG class B on 8 nodes (the halo-exchange extension workload).
    pub fn mg_b8() -> Self {
        Workload::Mg {
            class: MgClass::B,
            ranks: 8,
        }
    }

    /// The paper's transpose experiment (Figure 5).
    pub fn transpose_paper() -> Self {
        Workload::Transpose { iterations: 2 }
    }

    /// Number of ranks (and nodes) this workload needs.
    pub fn ranks(&self) -> usize {
        match self {
            Workload::Ft { ranks, .. } => *ranks,
            Workload::FtScale { ranks } => *ranks,
            Workload::Transpose { .. } => TransposeConfig::paper().ranks(),
            Workload::Cg { ranks, .. } => *ranks,
            Workload::Mg { ranks, .. } => *ranks,
            Workload::Swim | Workload::Mgrid => 1,
            Workload::MemoryMicro(_) | Workload::CpuMicro(_) | Workload::RegisterMicro(_) => 1,
            Workload::Comm(_) => 2,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Workload::Ft { class, ranks } => format!("FT.{class:?} on {ranks} nodes"),
            Workload::FtScale { ranks } => format!("FT.C x1 iter on {ranks} nodes"),
            Workload::Transpose { .. } => "12Kx12K transpose on 15 nodes".to_string(),
            Workload::Cg { class, ranks } => format!("CG.{class:?} on {ranks} nodes"),
            Workload::Mg { class, ranks } => format!("MG.{class:?} on {ranks} nodes"),
            Workload::Swim => "swim (sequential)".to_string(),
            Workload::Mgrid => "mgrid (sequential)".to_string(),
            Workload::MemoryMicro(_) => "memory microbenchmark".to_string(),
            Workload::CpuMicro(_) => "CPU (L2) microbenchmark".to_string(),
            Workload::RegisterMicro(_) => "register microbenchmark".to_string(),
            Workload::Comm(c) => format!("comm microbenchmark ({}B)", c.message_bytes),
        }
    }

    /// Parse a CLI/wire workload name (`ft-test4`, `ft-scale-1024`,
    /// `mem-micro`, ...). This is the single name registry: the CLI and
    /// the sweep-service protocol — which carries workloads by name so a
    /// client and daemon agree on fingerprints by construction — both
    /// resolve through it.
    pub fn parse_name(name: &str) -> Result<Workload, String> {
        // `ft-scale-<ranks>`: one class-C FT iteration on a large
        // power-of-two rank count (the scale benchmark family).
        if let Some(ranks) = name.strip_prefix("ft-scale-") {
            let ranks: usize = ranks
                .parse()
                .map_err(|_| format!("bad rank count in '{name}'"))?;
            if !ranks.is_power_of_two() {
                return Err(format!("'{name}': FT needs a power-of-two rank count"));
            }
            return Ok(Workload::ft_scale(ranks));
        }
        let w = match name {
            "ft-a8" => Workload::Ft {
                class: FtClass::A,
                ranks: 8,
            },
            "ft-b8" => Workload::ft_b8(),
            "ft-c8" => Workload::ft_c8(),
            "ft-test4" => Workload::ft_test(4),
            "cg-a8" => Workload::Cg {
                class: CgClass::A,
                ranks: 8,
            },
            "cg-b8" => Workload::cg_b8(),
            "mg-a8" => Workload::Mg {
                class: MgClass::A,
                ranks: 8,
            },
            "mg-b8" => Workload::mg_b8(),
            "transpose" => Workload::transpose_paper(),
            "swim" => Workload::Swim,
            "mgrid" => Workload::Mgrid,
            "mem-micro" => Workload::MemoryMicro(MicroConfig::default()),
            "cpu-micro" => Workload::CpuMicro(MicroConfig { passes: 400_000 }),
            "comm-256k" => Workload::Comm(CommMicroConfig::paper_256k()),
            "comm-4k" => Workload::Comm(CommMicroConfig::paper_4k_strided()),
            other => return Err(format!("unknown workload '{other}' (try `pwrperf list`)")),
        };
        Ok(w)
    }

    /// Known workload names (for `pwrperf list` and error hints).
    pub fn names() -> &'static [&'static str] {
        &[
            "ft-a8",
            "ft-b8",
            "ft-c8",
            "ft-test4",
            "ft-scale-256",
            "ft-scale-1024",
            "ft-scale-4096",
            "cg-a8",
            "cg-b8",
            "mg-a8",
            "mg-b8",
            "transpose",
            "swim",
            "mgrid",
            "mem-micro",
            "cpu-micro",
            "comm-256k",
            "comm-4k",
        ]
    }

    /// Build per-rank programs, with dynamic-DVS instrumentation when the
    /// strategy calls for it (ignored by workloads the paper never
    /// instrumented).
    pub fn programs(&self, dynamic_instrumentation: bool) -> Vec<Program> {
        match self {
            Workload::Ft { class, ranks } => {
                let mut cfg = FtConfig::paper(*class, *ranks);
                cfg.dynamic_dvs = dynamic_instrumentation;
                ft_programs(&cfg)
            }
            Workload::FtScale { ranks } => {
                let mut cfg = FtConfig::scale(*ranks);
                cfg.dynamic_dvs = dynamic_instrumentation;
                ft_programs(&cfg)
            }
            Workload::Transpose { iterations } => {
                let mut cfg = TransposeConfig::paper();
                cfg.iterations = *iterations;
                cfg.dynamic_dvs = dynamic_instrumentation;
                transpose_programs(&cfg)
            }
            Workload::Cg { class, ranks } => {
                let mut cfg = CgConfig::paper_style(*class, *ranks);
                cfg.dynamic_dvs = dynamic_instrumentation;
                cg_programs(&cfg)
            }
            Workload::Mg { class, ranks } => {
                let mut cfg = MgConfig::paper_style(*class, *ranks);
                cfg.dynamic_dvs = dynamic_instrumentation;
                mg_programs(&cfg)
            }
            Workload::Swim => vec![swim_program(&SpecConfig::paper())],
            Workload::Mgrid => vec![mgrid_program(&SpecConfig::paper())],
            Workload::MemoryMicro(cfg) => vec![memory_bound_program(cfg)],
            Workload::CpuMicro(cfg) => vec![cpu_bound_program(cfg)],
            Workload::RegisterMicro(cfg) => vec![register_program(cfg)],
            Workload::Comm(cfg) => comm_roundtrip_programs(cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_match_paper_experiments() {
        assert_eq!(Workload::ft_b8().ranks(), 8);
        assert_eq!(Workload::ft_c8().ranks(), 8);
        assert_eq!(Workload::transpose_paper().ranks(), 15);
        assert_eq!(Workload::Swim.ranks(), 1);
        assert_eq!(Workload::Comm(CommMicroConfig::paper_256k()).ranks(), 2);
    }

    #[test]
    fn programs_match_rank_count() {
        for w in [
            Workload::ft_test(4),
            Workload::Swim,
            Workload::Comm(CommMicroConfig::paper_4k_strided()),
        ] {
            assert_eq!(w.programs(false).len(), w.ranks(), "{}", w.label());
        }
    }

    #[test]
    fn instrumentation_flag_reaches_ft() {
        let plain = Workload::ft_test(2).programs(false);
        let inst = Workload::ft_test(2).programs(true);
        assert!(inst[0].len() > plain[0].len());
    }

    #[test]
    fn every_listed_name_parses() {
        for name in Workload::names() {
            assert!(Workload::parse_name(name).is_ok(), "{name}");
        }
        assert!(Workload::parse_name("ft-scale-512").is_ok());
        assert!(
            Workload::parse_name("ft-scale-100").is_err(),
            "not a power of two"
        );
        assert!(Workload::parse_name("no-such-workload").is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            Workload::ft_b8(),
            Workload::ft_c8(),
            Workload::transpose_paper(),
            Workload::Swim,
            Workload::Mgrid,
        ]
        .iter()
        .map(|w| w.label())
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }
}
