//! Automatic slack-directed DVS instrumentation.
//!
//! The paper inserts its dynamic-control calls *by hand*, around functions
//! the authors knew were slack-heavy (`fft()`, transpose steps 2–3). The
//! successor systems in this paper's lineage (Adagio, GEOPM) automated
//! that decision. This module implements the same idea on our substrate:
//!
//! 1. run a **pilot** at the top frequency with power sampling and phase
//!    tracing enabled;
//! 2. compute each named phase's **mean power**; phases drawing well
//!    below the hottest phase are slack-heavy (their time is dominated by
//!    waits or stalls, not switching);
//! 3. **rewrite** the programs, wrapping the selected phases in
//!    `SetSpeed(Lowest)` / `SetSpeed(Restore)` — exactly what the paper's
//!    hand instrumentation did;
//! 4. run under the dynamic governor.
//!
//! The result reproduces the paper's hand-tuned dynamic results without
//! knowing anything about the application.

use std::collections::BTreeSet;

use mpi_sim::{EngineConfig, Op, Program, RunResult};
use powerpack::profile_phases;
use sim_core::SimDuration;

use crate::strategy::DvsStrategy;
use crate::workload::Workload;
use crate::Experiment;

/// Tunables for the automatic instrumenter.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    /// A phase is slack-heavy when its mean power is below this fraction
    /// of the hottest phase's mean power.
    pub power_fraction_threshold: f64,
    /// Ignore phases shorter than this per occurrence (transition
    /// overhead would eat the gains).
    pub min_phase_occurrence: SimDuration,
    /// Ignore phases that account for less than this fraction of total
    /// rank-time (not worth the transitions).
    pub min_time_fraction: f64,
    /// Power sampling interval for the pilot run (fine enough to resolve
    /// the shortest phase of interest).
    pub pilot_sample_interval: SimDuration,
    /// Engine configuration for every run the tuner performs. The pilot
    /// overrides sampling and trace capacity on top of this (it must
    /// observe phases); the tuned run uses it as-is, so metrics, fault
    /// specs, wait policies and message-cost settings all carry through.
    pub engine: EngineConfig,
}

impl Default for AutoTuner {
    fn default() -> Self {
        AutoTuner {
            // Slack-heavy phases blend their waits with some compute
            // (FT's fft() runs at ~0.78 of the hottest phase's power);
            // phases above this fraction are dense compute.
            power_fraction_threshold: 0.85,
            min_phase_occurrence: SimDuration::from_millis(10),
            min_time_fraction: 0.02,
            pilot_sample_interval: SimDuration::from_millis(2),
            engine: EngineConfig::default(),
        }
    }
}

/// The outcome of an automatic tuning pass.
#[derive(Debug)]
pub struct AutoTuneOutcome {
    /// Phases selected for down-scaling, sorted.
    pub selected_phases: Vec<String>,
    /// The pilot run (top frequency, sampled).
    pub pilot: RunResult,
    /// The tuned run (dynamic governor, auto-instrumented programs).
    pub tuned: RunResult,
}

impl AutoTuner {
    /// Use `engine` for every run this tuner performs.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Pick slack-heavy phase names from a sampled, traced pilot run.
    pub fn select_phases(&self, pilot: &RunResult) -> Vec<String> {
        let profiles = profile_phases(pilot);
        if profiles.is_empty() {
            return Vec::new();
        }
        let ranks = pilot.breakdown.len().max(1) as f64;
        let total_rank_time = pilot.duration_secs() * ranks;
        // Mean power per phase; the hottest phase anchors the scale.
        let mean_power = |p: &powerpack::PhaseProfile| {
            let t = p.total_time.as_secs_f64();
            if t <= 0.0 {
                f64::INFINITY
            } else {
                p.energy_j / t
            }
        };
        let hottest = profiles
            .values()
            .map(mean_power)
            .filter(|p| p.is_finite())
            .fold(0.0f64, f64::max);
        if hottest <= 0.0 {
            return Vec::new();
        }
        let mut selected: Vec<String> = profiles
            .iter()
            .filter(|(_, p)| {
                let t = p.total_time.as_secs_f64();
                let per_occurrence = t / p.occurrences.max(1) as f64;
                mean_power(p) < self.power_fraction_threshold * hottest
                    && per_occurrence >= self.min_phase_occurrence.as_secs_f64()
                    && t / total_rank_time >= self.min_time_fraction
            })
            .map(|(name, _)| name.clone())
            .collect();
        selected.sort();
        selected
    }

    /// Wrap every occurrence of the selected phases in down/restore
    /// speed requests. Selected phases may nest (e.g. a selected outer
    /// phase containing a selected inner one): only the *outermost*
    /// begin scales down and only the matching outermost end restores,
    /// so an inner `PhaseEnd` never restores full speed while an outer
    /// selected phase is still open.
    pub fn instrument(programs: &[Program], phases: &BTreeSet<String>) -> Vec<Program> {
        programs
            .iter()
            .map(|p| {
                let mut ops = Vec::with_capacity(p.len() + 8);
                let mut depth: usize = 0;
                for op in p.ops() {
                    match op {
                        Op::PhaseBegin(name) if phases.contains(*name) => {
                            ops.push(op.clone());
                            if depth == 0 {
                                ops.push(Op::SetSpeed(dvfs::AppSpeedRequest::Lowest));
                            }
                            depth += 1;
                        }
                        Op::PhaseEnd(name) if phases.contains(*name) => {
                            if depth == 1 {
                                ops.push(Op::SetSpeed(dvfs::AppSpeedRequest::Restore));
                            }
                            ops.push(op.clone());
                            // Unmatched ends saturate instead of wrapping.
                            depth = depth.saturating_sub(1);
                        }
                        other => ops.push(other.clone()),
                    }
                }
                Program::from_ops(ops)
            })
            .collect()
    }

    /// The pilot experiment for `workload`: top frequency, sampled and
    /// traced finely enough for phase profiling.
    pub fn pilot_experiment(&self, workload: &Workload) -> Experiment {
        let pilot_engine = EngineConfig {
            sample_interval: Some(self.pilot_sample_interval),
            trace_capacity: 1 << 20,
            ..self.engine.clone()
        };
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1400)).with_engine(pilot_engine)
    }

    /// Rewrite the *uninstrumented* programs around `phases` and run them
    /// under the dynamic governor via a custom engine assembly, keeping
    /// the tuner's configured engine (metrics, faults, wait policy, ...).
    fn tuned_run(&self, workload: &Workload, phases: &BTreeSet<String>) -> RunResult {
        let programs = AutoTuner::instrument(&workload.programs(false), phases);
        let cluster = cluster_sim::Cluster::paper_testbed(workload.ranks());
        let governors = DvsStrategy::DynamicBaseMhz(1400).governors(cluster.nodes());
        mpi_sim::Engine::new(cluster, programs, governors, self.engine.clone()).run()
    }

    /// Full pipeline: pilot → select → instrument → tuned run.
    pub fn tune(&self, workload: &Workload) -> AutoTuneOutcome {
        let pilot = self.pilot_experiment(workload).run();
        let selected = self.select_phases(&pilot);
        let phase_set: BTreeSet<String> = selected.iter().cloned().collect();
        let tuned = self.tuned_run(workload, &phase_set);
        AutoTuneOutcome {
            selected_phases: selected,
            pilot,
            tuned,
        }
    }

    /// Tune several workloads at once: all pilots run as one parallel
    /// batch, then all tuned runs as another. Outcomes match per-workload
    /// [`AutoTuner::tune`] calls exactly and come back in input order.
    pub fn tune_many(&self, workloads: &[Workload]) -> Vec<AutoTuneOutcome> {
        let pilots =
            crate::runner::run_batch(workloads.iter().map(|w| self.pilot_experiment(w)).collect());
        let selections: Vec<Vec<String>> = pilots.iter().map(|p| self.select_phases(p)).collect();
        let jobs: Vec<(&Workload, BTreeSet<String>)> = workloads
            .iter()
            .zip(&selections)
            .map(|(w, sel)| (w, sel.iter().cloned().collect()))
            .collect();
        let tuned = crate::runner::parallel_map(&jobs, |(w, phases)| self.tuned_run(w, phases));
        selections
            .into_iter()
            .zip(pilots)
            .zip(tuned)
            .map(|((selected_phases, pilot), tuned)| AutoTuneOutcome {
                selected_phases,
                pilot,
                tuned,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft_a8() -> Workload {
        Workload::Ft {
            class: workloads::FtClass::A,
            ranks: 8,
        }
    }

    #[test]
    fn selects_ft_communication_phase() {
        let outcome = AutoTuner::default().tune(&ft_a8());
        assert!(
            outcome.selected_phases.iter().any(|p| p == "fft"),
            "selected: {:?}",
            outcome.selected_phases
        );
        assert!(
            !outcome.selected_phases.iter().any(|p| p == "evolve"),
            "evolve is hot compute, selected: {:?}",
            outcome.selected_phases
        );
    }

    #[test]
    fn tuned_run_saves_energy_like_hand_instrumentation() {
        let workload = ft_a8();
        let outcome = AutoTuner::default().tune(&workload);
        let hand = Experiment::new(workload, DvsStrategy::DynamicBaseMhz(1400)).run();
        // Auto-tuned energy within a few percent of the hand-tuned run.
        let ratio = outcome.tuned.total_energy_j() / hand.total_energy_j();
        assert!(
            (0.93..=1.07).contains(&ratio),
            "auto/hand energy ratio {ratio}"
        );
        assert!(outcome.tuned.total_energy_j() < outcome.pilot.total_energy_j());
    }

    #[test]
    fn instrument_wraps_only_selected_phases() {
        let programs = Workload::ft_test(2).programs(false);
        let phases: BTreeSet<String> = ["fft".to_string()].into_iter().collect();
        let rewritten = AutoTuner::instrument(&programs, &phases);
        let count = |p: &Program, pat: fn(&Op) -> bool| p.ops().iter().filter(|o| pat(o)).count();
        let begins = count(&rewritten[0], |o| matches!(o, Op::PhaseBegin("fft")));
        let speeds = count(&rewritten[0], |o| matches!(o, Op::SetSpeed(_)));
        assert_eq!(speeds, 2 * begins);
        // Length grew exactly by the inserted requests.
        assert_eq!(rewritten[0].len(), programs[0].len() + speeds);
    }

    #[test]
    fn single_phase_workload_selects_nothing() {
        // mgrid has one phase: nothing is "cooler than the hottest".
        let tuner = AutoTuner::default();
        let pilot_engine = EngineConfig {
            sample_interval: Some(SimDuration::from_millis(100)),
            trace_capacity: 1 << 16,
            ..EngineConfig::default()
        };
        let pilot = Experiment::new(Workload::Mgrid, DvsStrategy::StaticMhz(1400))
            .with_engine(pilot_engine)
            .run();
        assert!(tuner.select_phases(&pilot).is_empty());
    }

    #[test]
    fn tune_many_matches_individual_tunes() {
        let tuner = AutoTuner::default();
        let workloads = [Workload::ft_test(2), Workload::ft_test(4)];
        let many = tuner.tune_many(&workloads);
        assert_eq!(many.len(), workloads.len());
        for (outcome, w) in many.iter().zip(&workloads) {
            let solo = tuner.tune(w);
            assert_eq!(outcome.selected_phases, solo.selected_phases);
            assert_eq!(outcome.pilot, solo.pilot);
            assert_eq!(outcome.tuned, solo.tuned);
        }
    }

    #[test]
    fn untraced_pilot_selects_nothing() {
        let pilot = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1400)).run();
        assert!(AutoTuner::default().select_phases(&pilot).is_empty());
    }

    #[test]
    fn tune_honors_configured_engine() {
        // Regression: tuned_run/tune used to hardcode EngineConfig::default(),
        // dropping any engine the caller configured. A metrics-enabled tune
        // must produce a metrics-populated tuned run.
        let engine = EngineConfig {
            metrics: true,
            ..EngineConfig::default()
        };
        let tuner = AutoTuner::default().with_engine(engine);
        let outcome = tuner.tune(&Workload::ft_test(2));
        let metrics = outcome
            .tuned
            .metrics
            .as_ref()
            .expect("tuned run keeps metrics enabled");
        assert!(metrics.counter("engine.queue.processed").unwrap_or(0) > 0);
        assert!(
            outcome.pilot.metrics.is_some(),
            "pilot inherits the engine too"
        );
        // And the pilot still has its sampling/tracing overrides on top.
        assert!(!outcome.pilot.samples.is_empty());

        // tune_many threads the same engine through the parallel path.
        let many = tuner.tune_many(std::slice::from_ref(&Workload::ft_test(2)));
        assert_eq!(many.len(), 1);
        assert_eq!(many[0].tuned, outcome.tuned);
    }

    #[test]
    fn instrument_restores_only_at_outermost_nested_end() {
        // Regression: a selected phase nested inside another selected
        // phase used to emit Restore at the *inner* end, running the
        // rest of the outer phase at full speed.
        let work = || Op::Compute(mem_model::WorkUnit::pure_cpu(1.0e6));
        let ops = vec![
            Op::PhaseBegin("outer"),
            work(),
            Op::PhaseBegin("inner"),
            work(),
            Op::PhaseEnd("inner"),
            work(),
            Op::PhaseEnd("outer"),
        ];
        let programs = vec![Program::from_ops(ops)];
        let phases: BTreeSet<String> = ["outer".to_string(), "inner".to_string()]
            .into_iter()
            .collect();
        let rewritten = AutoTuner::instrument(&programs, &phases);
        let out: Vec<&Op> = rewritten[0].ops().iter().collect();
        let lowest_positions: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::SetSpeed(dvfs::AppSpeedRequest::Lowest)))
            .map(|(i, _)| i)
            .collect();
        let restore_positions: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::SetSpeed(dvfs::AppSpeedRequest::Restore)))
            .map(|(i, _)| i)
            .collect();
        // Exactly one down-scale (after the outermost begin) and one
        // restore (before the outermost end) — the inner pair is inert.
        assert_eq!(lowest_positions, vec![1]);
        assert_eq!(restore_positions, vec![out.len() - 2]);
        assert!(matches!(out[out.len() - 1], Op::PhaseEnd("outer")));
    }

    #[test]
    fn instrument_handles_repeated_same_name_nesting_and_stray_ends() {
        // Same-name nesting ("fft" inside "fft") and an unmatched end
        // must neither wrap the depth counter nor emit extra requests.
        let ops = vec![
            Op::PhaseEnd("fft"), // stray end before any begin
            Op::PhaseBegin("fft"),
            Op::PhaseBegin("fft"),
            Op::PhaseEnd("fft"),
            Op::PhaseEnd("fft"),
        ];
        let programs = vec![Program::from_ops(ops)];
        let phases: BTreeSet<String> = ["fft".to_string()].into_iter().collect();
        let rewritten = AutoTuner::instrument(&programs, &phases);
        let speeds = rewritten[0]
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::SetSpeed(_)))
            .count();
        assert_eq!(speeds, 2, "one Lowest + one Restore for the outermost pair");
    }
}
