//! Max-min fair rate allocation by progressive filling.
//!
//! Every flow crosses exactly two capacity constraints: its source node's
//! uplink and its destination node's downlink (the switch backplane is
//! non-blocking, as the Catalyst 2950 is for this port count). Progressive
//! filling raises all unfixed flows' rates together until some link
//! saturates, freezes the flows on that link, and repeats — yielding the
//! unique max-min fair allocation.
//!
//! The solver lives in [`FairShare`], which owns all the per-call scratch
//! (active-flow worklists, per-node residual capacities and counts) so a
//! caller that recomputes rates on every flow arrival/departure — the
//! fluid network does — allocates nothing after the first call.
//! [`max_min_fair`] is a convenience wrapper over a throwaway solver.

/// A flow to be allocated: `(src_node, dst_node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEndpoints {
    /// Sending node index.
    pub src: usize,
    /// Receiving node index.
    pub dst: usize,
}

/// Lifetime counters describing how hard the solver has worked — exposed
/// through the observability layer to spot pathological contention (many
/// filling rounds per call) and the rare float-degenerate fallback freezes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct SolverStats {
    /// Solver calls ([`FairShare::compute_into`] or
    /// [`FairShare::compute_with_capacities_into`]).
    pub invocations: u64,
    /// Progressive-filling rounds across all calls (each round freezes at
    /// least one link's flows).
    pub rounds: u64,
    /// Times the degenerate-float fallback freeze rule fired.
    pub fallback_freezes: u64,
}

/// Progressive-filling solver with reusable scratch buffers.
#[derive(Debug, Default)]
pub struct FairShare {
    active: Vec<usize>,
    still_active: Vec<usize>,
    up_cap: Vec<f64>,
    down_cap: Vec<f64>,
    up_count: Vec<usize>,
    down_count: Vec<usize>,
    stats: SolverStats,
}

impl FairShare {
    /// A solver with empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute max-min fair rates for `flows` over per-node uplinks and
    /// downlinks of capacity `link_capacity` (any unit; results share it),
    /// writing one rate per flow into `rates` (cleared first, same order).
    ///
    /// Self-flows (src == dst) are serviced by loopback and get
    /// `loopback_capacity` each without contending for the switch.
    pub fn compute_into(
        &mut self,
        flows: &[FlowEndpoints],
        nodes: usize,
        link_capacity: f64,
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        assert!(link_capacity > 0.0);
        self.fill(flows, nodes, |_| link_capacity, loopback_capacity, rates);
    }

    /// Like [`FairShare::compute_into`] but with an individual full-duplex
    /// link capacity per node (`capacities[n]` bounds both node `n`'s
    /// uplink and downlink) — the degraded-link fault-injection path,
    /// where one node's cable runs below the nominal rate. With uniform
    /// capacities the allocation is bit-identical to `compute_into`.
    pub fn compute_with_capacities_into(
        &mut self,
        flows: &[FlowEndpoints],
        nodes: usize,
        capacities: &[f64],
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        assert_eq!(capacities.len(), nodes, "one capacity per node");
        for &c in capacities {
            assert!(c > 0.0 && c.is_finite(), "link capacity must be positive");
        }
        self.fill(flows, nodes, |n| capacities[n], loopback_capacity, rates);
    }

    fn fill<C: Fn(usize) -> f64>(
        &mut self,
        flows: &[FlowEndpoints],
        nodes: usize,
        capacity_of: C,
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        let n = flows.len();
        rates.clear();
        rates.resize(n, 0.0);

        let FairShare {
            active,
            still_active,
            up_cap,
            down_cap,
            up_count,
            down_count,
            stats,
        } = self;
        stats.invocations += 1;

        // Loopback flows bypass the fabric.
        active.clear();
        for (i, f) in flows.iter().enumerate() {
            assert!(f.src < nodes && f.dst < nodes, "flow endpoint out of range");
            if f.src == f.dst {
                rates[i] = loopback_capacity;
            } else {
                active.push(i);
            }
        }

        up_cap.clear();
        down_cap.clear();
        for node in 0..nodes {
            let c = capacity_of(node);
            up_cap.push(c);
            down_cap.push(c);
        }
        up_count.clear();
        up_count.resize(nodes, 0);
        down_count.clear();
        down_count.resize(nodes, 0);
        for &i in active.iter() {
            up_count[flows[i].src] += 1;
            down_count[flows[i].dst] += 1;
        }

        while !active.is_empty() {
            stats.rounds += 1;
            // The bottleneck link is the one offering the least share per flow.
            let mut bottleneck_share = f64::INFINITY;
            for node in 0..nodes {
                if up_count[node] > 0 {
                    bottleneck_share = bottleneck_share.min(up_cap[node] / up_count[node] as f64);
                }
                if down_count[node] > 0 {
                    bottleneck_share =
                        bottleneck_share.min(down_cap[node] / down_count[node] as f64);
                }
            }
            // Always-on: a NaN/infinite share would propagate into every
            // flow rate and silently wreck completion times in release.
            assert!(
                bottleneck_share.is_finite(),
                "fair-share bottleneck share is not finite"
            );

            // Freeze every flow crossing a link that saturates at this share.
            let mut frozen_any = false;
            still_active.clear();
            for &i in active.iter() {
                let f = flows[i];
                let up_share = up_cap[f.src] / up_count[f.src] as f64;
                let down_share = down_cap[f.dst] / down_count[f.dst] as f64;
                let limit = up_share.min(down_share);
                if limit <= bottleneck_share * (1.0 + 1e-12) {
                    rates[i] = bottleneck_share;
                    up_cap[f.src] -= bottleneck_share;
                    down_cap[f.dst] -= bottleneck_share;
                    up_count[f.src] -= 1;
                    down_count[f.dst] -= 1;
                    frozen_any = true;
                } else {
                    still_active.push(i);
                }
            }

            if !frozen_any {
                stats.fallback_freezes += 1;
                // Degenerate float case: residual capacities can drift a few
                // ulps negative after many subtractions, and once the
                // bottleneck share is negative the relative tolerance above
                // moves the threshold the wrong way (multiplying a negative
                // share by 1 + 1e-12 makes it smaller), so nothing passes the
                // test. Freeze the flows on the strict minimum-share link
                // directly — that link has at least one flow by construction,
                // so filling always terminates.
                let mut min_link: Option<(bool, usize, f64)> = None;
                for node in 0..nodes {
                    if up_count[node] > 0 {
                        let share = up_cap[node] / up_count[node] as f64;
                        if min_link.is_none_or(|(_, _, s)| share < s) {
                            min_link = Some((true, node, share));
                        }
                    }
                    if down_count[node] > 0 {
                        let share = down_cap[node] / down_count[node] as f64;
                        if min_link.is_none_or(|(_, _, s)| share < s) {
                            min_link = Some((false, node, share));
                        }
                    }
                }
                match min_link {
                    Some((is_up, node, _)) => {
                        still_active.retain(|&i| {
                            let f = flows[i];
                            let on_link = if is_up { f.src == node } else { f.dst == node };
                            if on_link {
                                rates[i] = bottleneck_share;
                                up_cap[f.src] -= bottleneck_share;
                                down_cap[f.dst] -= bottleneck_share;
                                up_count[f.src] -= 1;
                                down_count[f.dst] -= 1;
                            }
                            !on_link
                        });
                    }
                    None => {
                        // Every remaining share is NaN (poisoned capacities);
                        // assign what we have and stop rather than spin.
                        for &i in still_active.iter() {
                            rates[i] = bottleneck_share;
                        }
                        still_active.clear();
                    }
                }
            }
            std::mem::swap(active, still_active);
        }
    }

    /// Lifetime work counters for this solver instance.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// Compute max-min fair rates with a throwaway solver. Returns one rate per
/// flow, in the same order; zero-length input returns an empty vector. See
/// [`FairShare::compute_into`] for the allocation-free form.
pub fn max_min_fair(
    flows: &[FlowEndpoints],
    nodes: usize,
    link_capacity: f64,
    loopback_capacity: f64,
) -> Vec<f64> {
    let mut rates = Vec::with_capacity(flows.len());
    FairShare::new().compute_into(flows, nodes, link_capacity, loopback_capacity, &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const C: f64 = 100.0;

    fn flow(src: usize, dst: usize) -> FlowEndpoints {
        FlowEndpoints { src, dst }
    }

    #[test]
    fn single_flow_gets_full_link() {
        let r = max_min_fair(&[flow(0, 1)], 2, C, C);
        assert_eq!(r, vec![C]);
    }

    #[test]
    fn two_flows_share_a_common_uplink() {
        let r = max_min_fair(&[flow(0, 1), flow(0, 2)], 3, C, C);
        assert_eq!(r, vec![C / 2.0, C / 2.0]);
    }

    #[test]
    fn incast_shares_the_downlink() {
        // Everyone sends to node 0 — the parallel-transpose gather pattern.
        let flows: Vec<_> = (1..5).map(|s| flow(s, 0)).collect();
        let r = max_min_fair(&flows, 5, C, C);
        for rate in r {
            assert!((rate - C / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let r = max_min_fair(&[flow(0, 1), flow(2, 3)], 4, C, C);
        assert_eq!(r, vec![C, C]);
    }

    #[test]
    fn mixed_bottlenecks_are_max_min() {
        // f0: 0->1, f1: 0->2, f2: 3->2.
        // Uplink 0 carries f0,f1; downlink 2 carries f1,f2.
        // Max-min: f0 = f1 = 50 (uplink 0 bottleneck); then f2 takes the
        // remaining 50 of downlink 2... but f2's own links allow 100, so
        // downlink 2 splits 50/50 first? Progressive filling: all rise to
        // 50 together, uplink 0 and downlink 2 both saturate at 50.
        let r = max_min_fair(&[flow(0, 1), flow(0, 2), flow(3, 2)], 4, C, C);
        assert!((r[0] - 50.0).abs() < 1e-9);
        assert!((r[1] - 50.0).abs() < 1e-9);
        assert!((r[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_release_goes_to_survivor() {
        // f0: 0->1, f1: 2->1, f2: 2->3.
        // Downlink 1: f0,f1. Uplink 2: f1,f2. All rise to 50; both links
        // saturate; everyone freezes at 50? f2 shares uplink 2 with f1:
        // at 50 uplink 2 is full. So yes all 50... but max-min optimal for
        // f0 would be 50 (downlink 1 shared) — consistent.
        let r = max_min_fair(&[flow(0, 1), flow(2, 1), flow(2, 3)], 4, C, C);
        for rate in &r {
            assert!((rate - 50.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn loopback_bypasses_fabric() {
        let r = max_min_fair(&[flow(0, 0), flow(0, 1)], 2, C, 1000.0);
        assert_eq!(r[0], 1000.0);
        assert_eq!(r[1], C);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(max_min_fair(&[], 4, C, C).is_empty());
    }

    #[test]
    fn solver_stats_count_work() {
        let mut solver = FairShare::new();
        let mut rates = Vec::new();
        solver.compute_into(&[flow(0, 1), flow(0, 2), flow(3, 2)], 4, C, C, &mut rates);
        solver.compute_into(&[flow(1, 0)], 4, C, C, &mut rates);
        let s = solver.stats();
        assert_eq!(s.invocations, 2);
        assert!(
            s.rounds >= 2,
            "at least one round per non-empty call: {s:?}"
        );
        assert_eq!(
            s.fallback_freezes, 0,
            "benign inputs never hit the fallback"
        );
    }

    #[test]
    fn reused_solver_matches_fresh_solver_bitwise() {
        // The whole point of FairShare is reuse; stale scratch must never
        // leak into a later answer.
        let scenarios: Vec<Vec<FlowEndpoints>> = vec![
            vec![flow(0, 1), flow(0, 2), flow(3, 2)],
            vec![flow(1, 0)],
            vec![flow(0, 0), flow(0, 1), flow(2, 1), flow(2, 3)],
            vec![],
            (0..20).map(|i| flow(i % 4, (i + 1) % 4)).collect(),
        ];
        let mut solver = FairShare::new();
        let mut rates = Vec::new();
        for flows in &scenarios {
            solver.compute_into(flows, 4, C, C, &mut rates);
            let fresh = max_min_fair(flows, 4, C, C);
            assert_eq!(rates.len(), fresh.len());
            for (a, b) in rates.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let _ = max_min_fair(&[flow(0, 9)], 2, C, C);
    }

    #[test]
    fn uniform_capacities_match_compute_into_bitwise() {
        let scenarios: Vec<Vec<FlowEndpoints>> = vec![
            vec![flow(0, 1), flow(0, 2), flow(3, 2)],
            vec![flow(0, 0), flow(0, 1), flow(2, 1), flow(2, 3)],
            (0..20).map(|i| flow(i % 4, (i + 1) % 4)).collect(),
        ];
        let caps = [C; 4];
        let mut uniform = Vec::new();
        let mut per_node = Vec::new();
        for flows in &scenarios {
            FairShare::new().compute_into(flows, 4, C, C, &mut uniform);
            FairShare::new().compute_with_capacities_into(flows, 4, &caps, C, &mut per_node);
            assert_eq!(uniform.len(), per_node.len());
            for (a, b) in uniform.iter().zip(&per_node) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn degraded_uplink_caps_its_flows_and_frees_the_rest() {
        // Node 0's link runs at a quarter rate; its flow to 1 is capped at
        // 25 while the untouched 2->3 pair still gets the full link.
        let caps = [C / 4.0, C, C, C];
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(
            &[flow(0, 1), flow(2, 3)],
            4,
            &caps,
            C,
            &mut rates,
        );
        assert!((rates[0] - C / 4.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - C).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn degraded_downlink_redistributes_incast_share() {
        // Two senders into a degraded node 0: they split the weak downlink.
        let caps = [C / 2.0, C, C];
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(
            &[flow(1, 0), flow(2, 0)],
            3,
            &caps,
            C,
            &mut rates,
        );
        for r in &rates {
            assert!((r - C / 4.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one capacity per node")]
    fn capacity_slice_must_cover_every_node() {
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(&[flow(0, 1)], 3, &[C, C], C, &mut rates);
    }

    proptest! {
        /// No link is ever oversubscribed and every flow gets a positive
        /// rate — the feasibility + efficiency half of max-min fairness.
        #[test]
        fn prop_allocation_feasible(
            endpoints in proptest::collection::vec((0usize..8, 0usize..8), 1..40)
        ) {
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let rates = max_min_fair(&flows, 8, C, C);
            prop_assert_eq!(rates.len(), flows.len());
            let mut up = [0.0f64; 8];
            let mut down = [0.0f64; 8];
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(*r > 0.0);
                if f.src != f.dst {
                    up[f.src] += r;
                    down[f.dst] += r;
                }
            }
            for node in 0..8 {
                prop_assert!(up[node] <= C * (1.0 + 1e-9), "uplink {} oversubscribed: {}", node, up[node]);
                prop_assert!(down[node] <= C * (1.0 + 1e-9), "downlink {} oversubscribed: {}", node, down[node]);
            }
        }

        /// Work conservation: every fabric flow is bottlenecked somewhere —
        /// it crosses at least one link with (almost) no spare capacity.
        #[test]
        fn prop_work_conserving(
            endpoints in proptest::collection::vec((0usize..6, 0usize..6), 1..30)
        ) {
            let flows: Vec<_> = endpoints.iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| flow(s, d)).collect();
            prop_assume!(!flows.is_empty());
            let rates = max_min_fair(&flows, 6, C, C);
            let mut up = [0.0f64; 6];
            let mut down = [0.0f64; 6];
            for (f, r) in flows.iter().zip(&rates) {
                up[f.src] += r;
                down[f.dst] += r;
            }
            for (f, _r) in flows.iter().zip(&rates) {
                let saturated = up[f.src] >= C * (1.0 - 1e-9) || down[f.dst] >= C * (1.0 - 1e-9);
                prop_assert!(saturated, "flow {:?} has no saturated link", f);
            }
        }

        /// Dense contention stress: progressive filling must terminate
        /// (no "failed to make progress" panic) and stay feasible even when
        /// hundreds of flows hammer the same few links with awkward
        /// capacities. This is the regime where residual capacities drift
        /// negative by a few ulps and the fallback freeze rule earns its keep.
        #[test]
        fn prop_dense_contention_terminates(
            endpoints in proptest::collection::vec((0usize..4, 0usize..4), 50..300),
            cap_millis in 1u64..10_000,
        ) {
            let cap = cap_millis as f64 * 1.0e-3; // exercise non-dyadic capacities
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let rates = max_min_fair(&flows, 4, cap, cap);
            let mut up = [0.0f64; 4];
            let mut down = [0.0f64; 4];
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(r.is_finite());
                if f.src != f.dst {
                    up[f.src] += r.max(0.0);
                    down[f.dst] += r.max(0.0);
                }
            }
            for node in 0..4 {
                prop_assert!(up[node] <= cap * (1.0 + 1e-6));
                prop_assert!(down[node] <= cap * (1.0 + 1e-6));
            }
        }
    }
}
