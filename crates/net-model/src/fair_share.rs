//! Max-min fair rate allocation by progressive filling.
//!
//! The solver works over an arbitrary set of directed capacity
//! constraints ("links"); a flow is constrained by every link on its
//! path. Progressive filling raises all unfixed flows' rates together
//! until some link saturates, freezes the flows on that link, and
//! repeats — yielding the unique max-min fair allocation.
//!
//! In the paper's flat testbed every flow crosses exactly two links:
//! its source node's uplink and its destination node's downlink (the
//! switch backplane is non-blocking, as the Catalyst 2950 is for this
//! port count). The flat entry points ([`FairShare::compute_into`],
//! [`FairShare::compute_with_capacities_into`]) express that as paths
//! `[2·src, 2·dst+1]` over the same core loop the hierarchical
//! [`FairShare::compute_topology_into`] uses — the link numbering (see
//! [`crate::topology`]) makes the generalized scan visit capacities in
//! the historical per-node up/down order, so flat results are
//! bit-identical to the pre-topology solver.
//!
//! The solver lives in [`FairShare`], which owns all the per-call scratch
//! (active-flow worklists, per-link residual capacities and counts) so a
//! caller that recomputes rates on every flow arrival/departure — the
//! fluid network does — allocates nothing after the first call.
//! [`max_min_fair`] is a convenience wrapper over a throwaway solver.

use crate::topology::LinkTable;

/// A flow to be allocated: `(src_node, dst_node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEndpoints {
    /// Sending node index.
    pub src: usize,
    /// Receiving node index.
    pub dst: usize,
}

/// Lifetime counters describing how hard the solver has worked — exposed
/// through the observability layer to spot pathological contention (many
/// filling rounds per call) and the rare float-degenerate fallback freezes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct SolverStats {
    /// Solver calls ([`FairShare::compute_into`] or
    /// [`FairShare::compute_with_capacities_into`]).
    pub invocations: u64,
    /// Progressive-filling rounds across all calls (each round freezes at
    /// least one link's flows).
    pub rounds: u64,
    /// Times the degenerate-float fallback freeze rule fired.
    pub fallback_freezes: u64,
    /// Link domains an incremental update actually had to revisit
    /// (maintained by the tree-mode fluid network, not by `fill`).
    pub domains_touched: u64,
    /// Link domains an incremental update proved unchanged and skipped.
    pub domains_skipped: u64,
}

/// Per-flow link paths for one solver call.
enum Paths<'a> {
    /// Flat fabric: flow `i`'s path is `[2·src, 2·dst+1]`, derived on
    /// the fly — no per-flow storage on the hot path.
    Flat,
    /// Explicit paths in CSR form: flow `i` crosses
    /// `links[offsets[i]..offsets[i+1]]`.
    Csr {
        offsets: &'a [u32],
        links: &'a [u32],
    },
}

impl Paths<'_> {
    #[inline]
    fn path<'b>(&'b self, i: usize, f: FlowEndpoints, buf: &'b mut [u32; 2]) -> &'b [u32] {
        match self {
            Paths::Flat => {
                // simlint: allow(literal-index): buf is a fixed [u32; 2], both slots exist by construction
                buf[0] = (2 * f.src) as u32;
                // simlint: allow(literal-index): buf is a fixed [u32; 2], both slots exist by construction
                buf[1] = (2 * f.dst + 1) as u32;
                buf
            }
            Paths::Csr { offsets, links } => &links[offsets[i] as usize..offsets[i + 1] as usize],
        }
    }
}

/// Progressive-filling solver with reusable scratch buffers.
#[derive(Debug, Default)]
pub struct FairShare {
    active: Vec<usize>,
    still_active: Vec<usize>,
    link_cap: Vec<f64>,
    link_count: Vec<usize>,
    path_offsets: Vec<u32>,
    path_links: Vec<u32>,
    stats: SolverStats,
}

impl FairShare {
    /// A solver with empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute max-min fair rates for `flows` over per-node uplinks and
    /// downlinks of capacity `link_capacity` (any unit; results share it),
    /// writing one rate per flow into `rates` (cleared first, same order).
    ///
    /// Self-flows (src == dst) are serviced by loopback and get
    /// `loopback_capacity` each without contending for the switch.
    pub fn compute_into(
        &mut self,
        flows: &[FlowEndpoints],
        nodes: usize,
        link_capacity: f64,
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        assert!(link_capacity > 0.0);
        self.fill(
            flows,
            2 * nodes,
            |_| link_capacity,
            &Paths::Flat,
            nodes,
            loopback_capacity,
            rates,
        );
    }

    /// Like [`FairShare::compute_into`] but with an individual full-duplex
    /// link capacity per node (`capacities[n]` bounds both node `n`'s
    /// uplink and downlink) — the degraded-link fault-injection path,
    /// where one node's cable runs below the nominal rate. With uniform
    /// capacities the allocation is bit-identical to `compute_into`.
    pub fn compute_with_capacities_into(
        &mut self,
        flows: &[FlowEndpoints],
        nodes: usize,
        capacities: &[f64],
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        assert_eq!(capacities.len(), nodes, "one capacity per node");
        for &c in capacities {
            assert!(c > 0.0 && c.is_finite(), "link capacity must be positive");
        }
        self.fill(
            flows,
            2 * nodes,
            |link| capacities[link / 2],
            &Paths::Flat,
            nodes,
            loopback_capacity,
            rates,
        );
    }

    /// Max-min fair rates over an arbitrary compiled topology: each flow
    /// is constrained by every link on its up/down path through the
    /// switch hierarchy (see [`LinkTable::push_path`]). With a flat or
    /// single-switch table this is bit-identical to
    /// [`FairShare::compute_into`].
    pub fn compute_topology_into(
        &mut self,
        flows: &[FlowEndpoints],
        table: &LinkTable,
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        // Move the CSR scratch out so `fill` can borrow the rest of self.
        let mut offsets = std::mem::take(&mut self.path_offsets);
        let mut links = std::mem::take(&mut self.path_links);
        offsets.clear();
        links.clear();
        offsets.push(0);
        for f in flows {
            table.push_path(f.src, f.dst, &mut links);
            offsets.push(links.len() as u32);
        }
        self.fill(
            flows,
            table.num_links(),
            |link| table.capacity(link),
            &Paths::Csr {
                offsets: &offsets,
                links: &links,
            },
            table.nodes(),
            loopback_capacity,
            rates,
        );
        self.path_offsets = offsets;
        self.path_links = links;
    }

    #[allow(clippy::too_many_arguments)]
    fn fill<C: Fn(usize) -> f64>(
        &mut self,
        flows: &[FlowEndpoints],
        num_links: usize,
        capacity_of: C,
        paths: &Paths<'_>,
        nodes: usize,
        loopback_capacity: f64,
        rates: &mut Vec<f64>,
    ) {
        let n = flows.len();
        rates.clear();
        rates.resize(n, 0.0);

        let FairShare {
            active,
            still_active,
            link_cap,
            link_count,
            stats,
            ..
        } = self;
        stats.invocations += 1;

        // Loopback flows bypass the fabric.
        active.clear();
        for (i, f) in flows.iter().enumerate() {
            assert!(f.src < nodes && f.dst < nodes, "flow endpoint out of range");
            if f.src == f.dst {
                rates[i] = loopback_capacity;
            } else {
                active.push(i);
            }
        }

        link_cap.clear();
        for link in 0..num_links {
            link_cap.push(capacity_of(link));
        }
        link_count.clear();
        link_count.resize(num_links, 0);
        let mut buf = [0u32; 2];
        for &i in active.iter() {
            for &l in paths.path(i, flows[i], &mut buf) {
                link_count[l as usize] += 1;
            }
        }

        while !active.is_empty() {
            stats.rounds += 1;
            // The bottleneck link is the one offering the least share per
            // flow. Link ids place edge up/downlinks at 2v/2v+1, so this
            // scan visits capacities in the historical per-node order.
            let mut bottleneck_share = f64::INFINITY;
            for link in 0..num_links {
                if link_count[link] > 0 {
                    bottleneck_share =
                        bottleneck_share.min(link_cap[link] / link_count[link] as f64);
                }
            }
            // Always-on: a NaN/infinite share would propagate into every
            // flow rate and silently wreck completion times in release.
            assert!(
                bottleneck_share.is_finite(),
                "fair-share bottleneck share is not finite"
            );

            // Freeze every flow crossing a link that saturates at this share.
            let mut frozen_any = false;
            still_active.clear();
            for &i in active.iter() {
                let path = paths.path(i, flows[i], &mut buf);
                let mut limit = f64::INFINITY;
                for &l in path {
                    limit = limit.min(link_cap[l as usize] / link_count[l as usize] as f64);
                }
                if limit <= bottleneck_share * (1.0 + 1e-12) {
                    rates[i] = bottleneck_share;
                    for &l in path {
                        link_cap[l as usize] -= bottleneck_share;
                        link_count[l as usize] -= 1;
                    }
                    frozen_any = true;
                } else {
                    still_active.push(i);
                }
            }

            if !frozen_any {
                stats.fallback_freezes += 1;
                // Degenerate float case: residual capacities can drift a few
                // ulps negative after many subtractions, and once the
                // bottleneck share is negative the relative tolerance above
                // moves the threshold the wrong way (multiplying a negative
                // share by 1 + 1e-12 makes it smaller), so nothing passes the
                // test. Freeze the flows on the strict minimum-share link
                // directly — that link has at least one flow by construction,
                // so filling always terminates.
                let mut min_link: Option<(usize, f64)> = None;
                for link in 0..num_links {
                    if link_count[link] > 0 {
                        let share = link_cap[link] / link_count[link] as f64;
                        if min_link.is_none_or(|(_, s)| share < s) {
                            min_link = Some((link, share));
                        }
                    }
                }
                match min_link {
                    Some((min_id, _)) => {
                        let min_id = min_id as u32;
                        still_active.retain(|&i| {
                            let path = paths.path(i, flows[i], &mut buf);
                            let on_link = path.contains(&min_id);
                            if on_link {
                                rates[i] = bottleneck_share;
                                for &l in path {
                                    link_cap[l as usize] -= bottleneck_share;
                                    link_count[l as usize] -= 1;
                                }
                            }
                            !on_link
                        });
                    }
                    None => {
                        // Every remaining share is NaN (poisoned capacities);
                        // assign what we have and stop rather than spin.
                        for &i in still_active.iter() {
                            rates[i] = bottleneck_share;
                        }
                        still_active.clear();
                    }
                }
            }
            std::mem::swap(active, still_active);
        }
    }

    /// Lifetime work counters for this solver instance.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Record incremental-domain bookkeeping from a caller that scopes
    /// recomputation to perturbed link domains (the tree-mode fluid
    /// network) — surfaced through [`SolverStats`] to prove the
    /// sub-linear asymptotics.
    pub fn note_domains(&mut self, touched: u64, skipped: u64) {
        self.stats.domains_touched += touched;
        self.stats.domains_skipped += skipped;
    }
}

/// Compute max-min fair rates with a throwaway solver. Returns one rate per
/// flow, in the same order; zero-length input returns an empty vector. See
/// [`FairShare::compute_into`] for the allocation-free form.
pub fn max_min_fair(
    flows: &[FlowEndpoints],
    nodes: usize,
    link_capacity: f64,
    loopback_capacity: f64,
) -> Vec<f64> {
    let mut rates = Vec::with_capacity(flows.len());
    FairShare::new().compute_into(flows, nodes, link_capacity, loopback_capacity, &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const C: f64 = 100.0;

    fn flow(src: usize, dst: usize) -> FlowEndpoints {
        FlowEndpoints { src, dst }
    }

    #[test]
    fn single_flow_gets_full_link() {
        let r = max_min_fair(&[flow(0, 1)], 2, C, C);
        assert_eq!(r, vec![C]);
    }

    #[test]
    fn two_flows_share_a_common_uplink() {
        let r = max_min_fair(&[flow(0, 1), flow(0, 2)], 3, C, C);
        assert_eq!(r, vec![C / 2.0, C / 2.0]);
    }

    #[test]
    fn incast_shares_the_downlink() {
        // Everyone sends to node 0 — the parallel-transpose gather pattern.
        let flows: Vec<_> = (1..5).map(|s| flow(s, 0)).collect();
        let r = max_min_fair(&flows, 5, C, C);
        for rate in r {
            assert!((rate - C / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let r = max_min_fair(&[flow(0, 1), flow(2, 3)], 4, C, C);
        assert_eq!(r, vec![C, C]);
    }

    #[test]
    fn mixed_bottlenecks_are_max_min() {
        // f0: 0->1, f1: 0->2, f2: 3->2.
        // Uplink 0 carries f0,f1; downlink 2 carries f1,f2.
        // Max-min: f0 = f1 = 50 (uplink 0 bottleneck); then f2 takes the
        // remaining 50 of downlink 2... but f2's own links allow 100, so
        // downlink 2 splits 50/50 first? Progressive filling: all rise to
        // 50 together, uplink 0 and downlink 2 both saturate at 50.
        let r = max_min_fair(&[flow(0, 1), flow(0, 2), flow(3, 2)], 4, C, C);
        assert!((r[0] - 50.0).abs() < 1e-9);
        assert!((r[1] - 50.0).abs() < 1e-9);
        assert!((r[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_release_goes_to_survivor() {
        // f0: 0->1, f1: 2->1, f2: 2->3.
        // Downlink 1: f0,f1. Uplink 2: f1,f2. All rise to 50; both links
        // saturate; everyone freezes at 50? f2 shares uplink 2 with f1:
        // at 50 uplink 2 is full. So yes all 50... but max-min optimal for
        // f0 would be 50 (downlink 1 shared) — consistent.
        let r = max_min_fair(&[flow(0, 1), flow(2, 1), flow(2, 3)], 4, C, C);
        for rate in &r {
            assert!((rate - 50.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn loopback_bypasses_fabric() {
        let r = max_min_fair(&[flow(0, 0), flow(0, 1)], 2, C, 1000.0);
        assert_eq!(r[0], 1000.0);
        assert_eq!(r[1], C);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(max_min_fair(&[], 4, C, C).is_empty());
    }

    #[test]
    fn solver_stats_count_work() {
        let mut solver = FairShare::new();
        let mut rates = Vec::new();
        solver.compute_into(&[flow(0, 1), flow(0, 2), flow(3, 2)], 4, C, C, &mut rates);
        solver.compute_into(&[flow(1, 0)], 4, C, C, &mut rates);
        let s = solver.stats();
        assert_eq!(s.invocations, 2);
        assert!(
            s.rounds >= 2,
            "at least one round per non-empty call: {s:?}"
        );
        assert_eq!(
            s.fallback_freezes, 0,
            "benign inputs never hit the fallback"
        );
    }

    #[test]
    fn reused_solver_matches_fresh_solver_bitwise() {
        // The whole point of FairShare is reuse; stale scratch must never
        // leak into a later answer.
        let scenarios: Vec<Vec<FlowEndpoints>> = vec![
            vec![flow(0, 1), flow(0, 2), flow(3, 2)],
            vec![flow(1, 0)],
            vec![flow(0, 0), flow(0, 1), flow(2, 1), flow(2, 3)],
            vec![],
            (0..20).map(|i| flow(i % 4, (i + 1) % 4)).collect(),
        ];
        let mut solver = FairShare::new();
        let mut rates = Vec::new();
        for flows in &scenarios {
            solver.compute_into(flows, 4, C, C, &mut rates);
            let fresh = max_min_fair(flows, 4, C, C);
            assert_eq!(rates.len(), fresh.len());
            for (a, b) in rates.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let _ = max_min_fair(&[flow(0, 9)], 2, C, C);
    }

    #[test]
    fn uniform_capacities_match_compute_into_bitwise() {
        let scenarios: Vec<Vec<FlowEndpoints>> = vec![
            vec![flow(0, 1), flow(0, 2), flow(3, 2)],
            vec![flow(0, 0), flow(0, 1), flow(2, 1), flow(2, 3)],
            (0..20).map(|i| flow(i % 4, (i + 1) % 4)).collect(),
        ];
        let caps = [C; 4];
        let mut uniform = Vec::new();
        let mut per_node = Vec::new();
        for flows in &scenarios {
            FairShare::new().compute_into(flows, 4, C, C, &mut uniform);
            FairShare::new().compute_with_capacities_into(flows, 4, &caps, C, &mut per_node);
            assert_eq!(uniform.len(), per_node.len());
            for (a, b) in uniform.iter().zip(&per_node) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn degraded_uplink_caps_its_flows_and_frees_the_rest() {
        // Node 0's link runs at a quarter rate; its flow to 1 is capped at
        // 25 while the untouched 2->3 pair still gets the full link.
        let caps = [C / 4.0, C, C, C];
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(
            &[flow(0, 1), flow(2, 3)],
            4,
            &caps,
            C,
            &mut rates,
        );
        assert!((rates[0] - C / 4.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - C).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn degraded_downlink_redistributes_incast_share() {
        // Two senders into a degraded node 0: they split the weak downlink.
        let caps = [C / 2.0, C, C];
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(
            &[flow(1, 0), flow(2, 0)],
            3,
            &caps,
            C,
            &mut rates,
        );
        for r in &rates {
            assert!((r - C / 4.0).abs() < 1e-9, "{rates:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one capacity per node")]
    fn capacity_slice_must_cover_every_node() {
        let mut rates = Vec::new();
        FairShare::new().compute_with_capacities_into(&[flow(0, 1)], 3, &[C, C], C, &mut rates);
    }

    #[test]
    fn single_switch_topology_matches_flat_bitwise() {
        use crate::topology::Topology;
        let scenarios: Vec<Vec<FlowEndpoints>> = vec![
            vec![flow(0, 1), flow(0, 2), flow(3, 2)],
            vec![flow(0, 0), flow(0, 1), flow(2, 1), flow(2, 3)],
            (0..20).map(|i| flow(i % 4, (i + 1) % 4)).collect(),
        ];
        let table = Topology::FatTree {
            radix: 8,
            oversub: 2.0,
        }
        .link_table(4, C);
        let mut solver = FairShare::new();
        let mut rates = Vec::new();
        for flows in &scenarios {
            solver.compute_topology_into(flows, &table, C, &mut rates);
            let flat = max_min_fair(flows, 4, C, C);
            assert_eq!(rates.len(), flat.len());
            for (a, b) in rates.iter().zip(&flat) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn nonblocking_tree_matches_flat_values() {
        // oversub = 1 with multiple trunk levels: trunks never bind
        // strictly below the edges, so the allocation equals flat's.
        use crate::topology::Topology;
        let table = Topology::FatTree {
            radix: 2,
            oversub: 1.0,
        }
        .link_table(8, C);
        let flows: Vec<_> = (0..24).map(|i| flow(i % 8, (i * 3 + 1) % 8)).collect();
        let mut rates = Vec::new();
        FairShare::new().compute_topology_into(&flows, &table, C, &mut rates);
        let flat = max_min_fair(&flows, 8, C, C);
        for (a, b) in rates.iter().zip(&flat) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn oversubscribed_trunk_throttles_cross_traffic() {
        // 4 hosts, radix 2, oversub 4: the two leaf trunks carry
        // 2*C/4 = C/2 each. One cross-leaf flow is trunk-limited to
        // C/2; an intra-leaf flow still gets the full edge.
        use crate::topology::Topology;
        let table = Topology::FatTree {
            radix: 2,
            oversub: 4.0,
        }
        .link_table(4, C);
        let mut rates = Vec::new();
        FairShare::new().compute_topology_into(&[flow(0, 2), flow(2, 3)], &table, C, &mut rates);
        assert!((rates[0] - C / 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - C).abs() < 1e-9, "{rates:?}");
    }

    proptest! {
        /// The ISSUE-mandated degeneracy: with radix >= nodes (single
        /// leaf switch) the hierarchical solver must match the flat
        /// solver bit-for-bit, over random flow sets and radices.
        #[test]
        fn prop_wide_tree_is_bitwise_flat(
            endpoints in proptest::collection::vec((0usize..8, 0usize..8), 1..40),
            radix in 8usize..64,
            oversub in 1u32..8,
        ) {
            use crate::topology::Topology;
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let table = Topology::FatTree { radix, oversub: oversub as f64 }
                .link_table(8, C);
            let mut rates = Vec::new();
            FairShare::new().compute_topology_into(&flows, &table, C, &mut rates);
            let flat = max_min_fair(&flows, 8, C, C);
            prop_assert_eq!(rates.len(), flat.len());
            for (a, b) in rates.iter().zip(&flat) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Feasibility on a deep oversubscribed tree: no link on any
        /// flow's path carries more than its capacity.
        #[test]
        fn prop_tree_allocation_feasible(
            endpoints in proptest::collection::vec((0usize..8, 0usize..8), 1..40),
            oversub in 1u32..5,
        ) {
            use crate::topology::Topology;
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let table = Topology::FatTree { radix: 2, oversub: oversub as f64 }
                .link_table(8, C);
            let mut rates = Vec::new();
            FairShare::new().compute_topology_into(&flows, &table, C, &mut rates);
            let mut load = vec![0.0f64; table.num_links()];
            let mut path = Vec::new();
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(*r > 0.0);
                path.clear();
                table.push_path(f.src, f.dst, &mut path);
                for &l in &path {
                    load[l as usize] += r;
                }
            }
            for (l, &used) in load.iter().enumerate() {
                prop_assert!(
                    used <= table.capacity(l) * (1.0 + 1e-6),
                    "link {} oversubscribed: {} > {}", l, used, table.capacity(l)
                );
            }
        }

        /// No link is ever oversubscribed and every flow gets a positive
        /// rate — the feasibility + efficiency half of max-min fairness.
        #[test]
        fn prop_allocation_feasible(
            endpoints in proptest::collection::vec((0usize..8, 0usize..8), 1..40)
        ) {
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let rates = max_min_fair(&flows, 8, C, C);
            prop_assert_eq!(rates.len(), flows.len());
            let mut up = [0.0f64; 8];
            let mut down = [0.0f64; 8];
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(*r > 0.0);
                if f.src != f.dst {
                    up[f.src] += r;
                    down[f.dst] += r;
                }
            }
            for node in 0..8 {
                prop_assert!(up[node] <= C * (1.0 + 1e-9), "uplink {} oversubscribed: {}", node, up[node]);
                prop_assert!(down[node] <= C * (1.0 + 1e-9), "downlink {} oversubscribed: {}", node, down[node]);
            }
        }

        /// Work conservation: every fabric flow is bottlenecked somewhere —
        /// it crosses at least one link with (almost) no spare capacity.
        #[test]
        fn prop_work_conserving(
            endpoints in proptest::collection::vec((0usize..6, 0usize..6), 1..30)
        ) {
            let flows: Vec<_> = endpoints.iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| flow(s, d)).collect();
            prop_assume!(!flows.is_empty());
            let rates = max_min_fair(&flows, 6, C, C);
            let mut up = [0.0f64; 6];
            let mut down = [0.0f64; 6];
            for (f, r) in flows.iter().zip(&rates) {
                up[f.src] += r;
                down[f.dst] += r;
            }
            for (f, _r) in flows.iter().zip(&rates) {
                let saturated = up[f.src] >= C * (1.0 - 1e-9) || down[f.dst] >= C * (1.0 - 1e-9);
                prop_assert!(saturated, "flow {:?} has no saturated link", f);
            }
        }

        /// Dense contention stress: progressive filling must terminate
        /// (no "failed to make progress" panic) and stay feasible even when
        /// hundreds of flows hammer the same few links with awkward
        /// capacities. This is the regime where residual capacities drift
        /// negative by a few ulps and the fallback freeze rule earns its keep.
        #[test]
        fn prop_dense_contention_terminates(
            endpoints in proptest::collection::vec((0usize..4, 0usize..4), 50..300),
            cap_millis in 1u64..10_000,
        ) {
            let cap = cap_millis as f64 * 1.0e-3; // exercise non-dyadic capacities
            let flows: Vec<_> = endpoints.iter().map(|&(s, d)| flow(s, d)).collect();
            let rates = max_min_fair(&flows, 4, cap, cap);
            let mut up = [0.0f64; 4];
            let mut down = [0.0f64; 4];
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(r.is_finite());
                if f.src != f.dst {
                    up[f.src] += r.max(0.0);
                    down[f.dst] += r.max(0.0);
                }
            }
            for node in 0..4 {
                prop_assert!(up[node] <= cap * (1.0 + 1e-6));
                prop_assert!(down[node] <= cap * (1.0 + 1e-6));
            }
        }
    }
}
