//! Network topology: flat single-switch (the paper's testbed) and
//! hierarchical fat-tree (the petaflops-class target scale).
//!
//! A topology compiles, for a given node count and edge-link capacity,
//! into a [`LinkTable`]: a flat array of directed link capacities plus
//! the routing needed to enumerate the links on any flow's path. The
//! link numbering is chosen so the flat case degenerates *exactly* to
//! the historical per-node up/down solver:
//!
//! * link `2·v`   — node `v`'s uplink (host → leaf switch);
//! * link `2·v+1` — node `v`'s downlink (leaf switch → host);
//! * trunk links (switch → parent uplink, parent → switch downlink)
//!   are numbered from `2·nodes` upward, one pair per non-root switch,
//!   level by level.
//!
//! A linear scan over link ids `0..2·nodes` therefore visits capacities
//! in the same order as the historical `for node { uplink; downlink }`
//! loop, which keeps the generalized solver bit-identical to the flat
//! one when no trunks exist (single switch: `radix >= nodes`, or
//! [`Topology::Flat`]).
//!
//! Trunk capacities encode oversubscription: the trunk above a switch
//! spanning `h` hosts at level `l` carries `edge_capacity · h / oversub^l`
//! in each direction. With `oversub = 1` the fabric is non-blocking.

/// Shape of the interconnect fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Topology {
    /// One non-blocking switch; every flow crosses exactly its source
    /// uplink and destination downlink. The paper's Catalyst 2950.
    #[default]
    Flat,
    /// A fat-tree of switches with `radix` downward ports each and an
    /// `oversub : 1` capacity taper per level going up.
    FatTree {
        /// Hosts (or child switches) per switch.
        radix: usize,
        /// Oversubscription ratio per level; `1.0` is non-blocking.
        oversub: f64,
    },
}

impl Topology {
    /// Parse a CLI/engine spec string.
    ///
    /// Accepted forms: `flat`, `fat-tree`,
    /// `fat-tree:radix=16,oversub=2` (either key optional, any order).
    pub fn parse(spec: &str) -> Result<Topology, String> {
        let spec = spec.trim();
        if spec == "flat" {
            return Ok(Topology::Flat);
        }
        let rest = if spec == "fat-tree" {
            ""
        } else if let Some(rest) = spec.strip_prefix("fat-tree:") {
            rest
        } else {
            return Err(format!(
                "unknown topology '{spec}' (expected 'flat' or 'fat-tree[:radix=R,oversub=S]')"
            ));
        };
        let mut radix = 16usize;
        let mut oversub = 1.0f64;
        for part in rest.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed topology option '{part}' (want key=value)"))?;
            match key.trim() {
                "radix" => {
                    radix = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad radix '{value}'"))?;
                    if radix < 2 {
                        return Err("radix must be at least 2".into());
                    }
                }
                "oversub" => {
                    oversub = value
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| format!("bad oversub '{value}'"))?;
                    if !(oversub >= 1.0 && oversub.is_finite()) {
                        return Err("oversub must be a finite ratio >= 1".into());
                    }
                }
                other => return Err(format!("unknown topology option '{other}'")),
            }
        }
        Ok(Topology::FatTree { radix, oversub })
    }

    /// Canonical spec string (round-trips through [`Topology::parse`]).
    pub fn spec(&self) -> String {
        match self {
            Topology::Flat => "flat".to_string(),
            Topology::FatTree { radix, oversub } => {
                format!("fat-tree:radix={radix},oversub={oversub}")
            }
        }
    }

    /// Compile the topology for `nodes` hosts with per-host full-duplex
    /// edge links of `edge_capacity` (any unit).
    pub fn link_table(&self, nodes: usize, edge_capacity: f64) -> LinkTable {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(
            edge_capacity > 0.0 && edge_capacity.is_finite(),
            "edge capacity must be positive"
        );
        let mut caps = Vec::with_capacity(2 * nodes);
        for _ in 0..nodes {
            caps.push(edge_capacity); // uplink
            caps.push(edge_capacity); // downlink
        }
        let mut levels = Vec::new();
        if let Topology::FatTree { radix, oversub } = *self {
            // Build trunk levels bottom-up until a single (root) switch
            // spans everything; the root itself has no uplink.
            let mut span = radix; // hosts per switch at this level
            let mut taper = oversub;
            while span < nodes {
                let switches = nodes.div_ceil(span);
                let first_link = caps.len() as u32;
                for s in 0..switches {
                    let hosts = span.min(nodes - s * span);
                    let cap = edge_capacity * hosts as f64 / taper;
                    caps.push(cap); // up-trunk
                    caps.push(cap); // down-trunk
                }
                levels.push(Level {
                    first_link,
                    span: span as u32,
                });
                span = match span.checked_mul(radix) {
                    Some(s) => s,
                    None => break,
                };
                taper *= oversub;
            }
        }
        LinkTable {
            nodes,
            caps,
            levels,
        }
    }
}

/// One trunk level of a compiled fat-tree: switches spanning `span`
/// hosts each, with up/down trunk pairs starting at `first_link`.
#[derive(Debug, Clone)]
struct Level {
    first_link: u32,
    span: u32,
}

/// A compiled topology: per-link capacities and flow routing.
#[derive(Debug, Clone)]
pub struct LinkTable {
    nodes: usize,
    caps: Vec<f64>,
    levels: Vec<Level>,
}

impl LinkTable {
    /// Hosts in the fabric.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total directed links (edges then trunks).
    pub fn num_links(&self) -> usize {
        self.caps.len()
    }

    /// Trunk levels above the edge layer (0 for flat / single switch).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Capacity of link `id`.
    pub fn capacity(&self, id: usize) -> f64 {
        self.caps[id]
    }

    /// All link capacities, indexed by link id.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Node `v`'s uplink id.
    pub fn uplink(&self, v: usize) -> u32 {
        (2 * v) as u32
    }

    /// Node `v`'s downlink id.
    pub fn downlink(&self, v: usize) -> u32 {
        (2 * v + 1) as u32
    }

    /// Scale both directions of node `v`'s edge link by `factor` — the
    /// degraded-link fault hook, re-expressed per-link.
    pub fn scale_edge_capacity(&mut self, v: usize, factor: f64) {
        assert!(v < self.nodes, "node out of range");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        self.caps[2 * v] *= factor;
        self.caps[2 * v + 1] *= factor;
    }

    /// Append the link ids on `src → dst`'s path to `out`, in order:
    /// source uplink, up-trunks toward the lowest common switch,
    /// down-trunks back toward the destination, destination downlink.
    /// Loopback (`src == dst`) contributes no links.
    pub fn push_path(&self, src: usize, dst: usize, out: &mut Vec<u32>) {
        assert!(
            src < self.nodes && dst < self.nodes,
            "flow endpoint out of range"
        );
        if src == dst {
            return;
        }
        out.push(self.uplink(src));
        // Climb while the endpoints sit under different switches.
        let mut climb = 0;
        for level in &self.levels {
            let span = level.span as usize;
            if src / span == dst / span {
                break;
            }
            out.push(level.first_link + 2 * (src / span) as u32);
            climb += 1;
        }
        for level in self.levels[..climb].iter().rev() {
            let span = level.span as usize;
            out.push(level.first_link + 2 * (dst / span) as u32 + 1);
        }
        out.push(self.downlink(dst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Topology::parse("flat").unwrap(), Topology::Flat);
        assert_eq!(
            Topology::parse("fat-tree:radix=16,oversub=2").unwrap(),
            Topology::FatTree {
                radix: 16,
                oversub: 2.0
            }
        );
        assert_eq!(
            Topology::parse("fat-tree").unwrap(),
            Topology::FatTree {
                radix: 16,
                oversub: 1.0
            }
        );
        assert_eq!(
            Topology::parse("fat-tree:oversub=1.5").unwrap(),
            Topology::FatTree {
                radix: 16,
                oversub: 1.5
            }
        );
        for t in [
            Topology::Flat,
            Topology::FatTree {
                radix: 8,
                oversub: 4.0,
            },
        ] {
            assert_eq!(Topology::parse(&t.spec()).unwrap(), t);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Topology::parse("torus").is_err());
        assert!(Topology::parse("fat-tree:radix=1").is_err());
        assert!(Topology::parse("fat-tree:oversub=0.5").is_err());
        assert!(Topology::parse("fat-tree:radix=abc").is_err());
        assert!(Topology::parse("fat-tree:color=blue").is_err());
        assert!(Topology::parse("fat-tree:radix").is_err());
    }

    #[test]
    fn flat_table_has_only_edges() {
        let t = Topology::Flat.link_table(4, 100.0);
        assert_eq!(t.num_links(), 8);
        assert_eq!(t.num_levels(), 0);
        let mut path = Vec::new();
        t.push_path(1, 3, &mut path);
        assert_eq!(path, vec![2, 7]);
    }

    #[test]
    fn wide_fat_tree_degenerates_to_flat() {
        // radix >= nodes: a single leaf switch, no trunks.
        let t = Topology::FatTree {
            radix: 16,
            oversub: 2.0,
        }
        .link_table(8, 100.0);
        assert_eq!(t.num_links(), 16);
        assert_eq!(t.num_levels(), 0);
    }

    #[test]
    fn two_level_tree_routes_through_trunks() {
        // 8 hosts, radix 2: leaves span 2, then 4, then root spans 8.
        let t = Topology::FatTree {
            radix: 2,
            oversub: 2.0,
        }
        .link_table(8, 100.0);
        // Edges: 16 links. Level 1: 4 switches (span 2) = 8 trunks.
        // Level 2: 2 switches (span 4) = 4 trunks. Root: none.
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.num_links(), 16 + 8 + 4);
        // Trunk capacity tapers: span-2 switch carries 2*100/2 = 100,
        // span-4 switch carries 4*100/4 = 100.
        assert_eq!(t.capacity(16), 100.0);
        assert_eq!(t.capacity(24), 100.0);

        let mut path = Vec::new();
        // Same leaf (0,1): edges only.
        t.push_path(0, 1, &mut path);
        assert_eq!(path, vec![0, 3]);
        // Adjacent leaves (0,2): one trunk level each way.
        path.clear();
        t.push_path(0, 2, &mut path);
        assert_eq!(path, vec![0, 16, 16 + 2 + 1, 5]);
        // Across the root (0,7): both trunk levels.
        path.clear();
        t.push_path(0, 7, &mut path);
        assert_eq!(path, vec![0, 16, 24, 24 + 2 + 1, 16 + 6 + 1, 15]);
        // Loopback: no links.
        path.clear();
        t.push_path(5, 5, &mut path);
        assert!(path.is_empty());
    }

    #[test]
    fn partial_subtree_capacity_uses_actual_hosts() {
        // 5 hosts, radix 2: last leaf switch holds a single host.
        let t = Topology::FatTree {
            radix: 2,
            oversub: 1.0,
        }
        .link_table(5, 100.0);
        // Level 1: 3 switches spanning 2,2,1 hosts.
        assert_eq!(t.capacity(10), 200.0);
        assert_eq!(t.capacity(14), 100.0); // the lone-host leaf
    }

    #[test]
    fn degraded_edge_scales_both_directions() {
        let mut t = Topology::Flat.link_table(3, 100.0);
        t.scale_edge_capacity(1, 0.5);
        assert_eq!(t.capacity(2), 50.0);
        assert_eq!(t.capacity(3), 50.0);
        assert_eq!(t.capacity(0), 100.0);
    }
}
