//! # net-model — switched-Ethernet fluid network model
//!
//! Models the paper's interconnect: a 100 Mb/s Cisco Catalyst 2950 switch
//! with one full-duplex link per node. Messages are fluid flows that share
//! link bandwidth max-min fairly:
//!
//! * each node has an uplink and a downlink of `link_bw_bps`;
//! * a flow is constrained by its source's uplink and destination's
//!   downlink;
//! * rates are assigned by progressive filling (water-filling), the
//!   standard max-min fair allocation;
//! * whenever the flow set changes, rates are recomputed and the engine is
//!   told when the next flow will finish.
//!
//! Frequency-*independent* network time lives here. The per-message CPU
//! cost of the MPI software stack (which *does* scale with DVFS frequency)
//! is modeled by `mpi-sim` on top.

pub mod fair_share;
pub mod fluid;
pub mod params;
pub mod topology;

pub use fair_share::SolverStats;
pub use fluid::{FlowId, FluidNetwork};
pub use params::NetworkParams;
pub use topology::{LinkTable, Topology};
