//! Network parameters.

use sim_core::SimDuration;

/// Parameters of the switched cluster interconnect.
#[derive(Debug, Clone)]
pub struct NetworkParams {
    /// Per-direction capacity of each node's link to the switch, bits/s.
    pub link_bw_bps: f64,
    /// Fixed per-message latency that does not depend on CPU frequency:
    /// NIC DMA setup, switch store-and-forward, propagation.
    pub wire_latency: SimDuration,
    /// Protocol efficiency: fraction of raw link bandwidth usable as
    /// payload goodput (Ethernet + IP + TCP framing overhead for MPICH's
    /// p4/TCP transport).
    pub goodput_efficiency: f64,
}

impl NetworkParams {
    /// The paper's 100 Mb/s Catalyst 2950 fabric with MPICH-1.2.5/TCP
    /// framing efficiency and tens-of-microseconds message latency.
    pub fn catalyst_2950_100m() -> Self {
        NetworkParams {
            link_bw_bps: 100e6,
            wire_latency: SimDuration::from_micros(30),
            goodput_efficiency: 0.92,
        }
    }

    /// Usable payload bandwidth per link direction, bytes/s.
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        self.link_bw_bps * self.goodput_efficiency / 8.0
    }

    /// Panic on nonsensical values.
    pub fn validate(&self) {
        assert!(self.link_bw_bps > 0.0 && self.link_bw_bps.is_finite());
        assert!((0.0..=1.0).contains(&self.goodput_efficiency) && self.goodput_efficiency > 0.0);
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams::catalyst_2950_100m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalyst_goodput_is_realistic() {
        let p = NetworkParams::catalyst_2950_100m();
        p.validate();
        let bps = p.goodput_bytes_per_sec();
        // ~11.5 MB/s payload on 100 Mb Ethernet.
        assert!(bps > 10.0e6 && bps < 12.5e6, "{bps}");
    }

    #[test]
    fn large_transfer_time_matches_paper_scale() {
        // 256 KB one way should take ~20 ms, so the paper's 256 KB round
        // trip sits in the tens of milliseconds: overwhelmingly wire time.
        let p = NetworkParams::catalyst_2950_100m();
        let t = 256.0 * 1024.0 / p.goodput_bytes_per_sec();
        assert!(t > 0.015 && t < 0.03, "{t}");
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        NetworkParams {
            link_bw_bps: 0.0,
            ..NetworkParams::default()
        }
        .validate();
    }
}
