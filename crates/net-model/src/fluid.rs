//! The fluid-flow network: active transfers draining at max-min fair rates.
//!
//! The engine drives this with three calls:
//!
//! 1. [`FluidNetwork::start_flow`] when a sender/receiver pair is matched;
//! 2. [`FluidNetwork::next_completion`] to learn when to schedule the next
//!    network event;
//! 3. [`FluidNetwork::take_completed_into`] at that event to collect
//!    finished transfers (rates are recomputed automatically as flows
//!    come and go).
//!
//! ## Incremental recomputation
//!
//! Rates only change when the *fabric* flow set changes: loopback (self)
//! flows never contend for the switch, so arrivals and departures of
//! loopback flows leave every other rate untouched, and a lone fabric flow
//! always gets the full link. Those cases skip the progressive-filling
//! solver entirely; the general case reuses a [`FairShare`] solver and
//! per-call scratch, so the steady-state event loop allocates nothing.
//! All fast paths are bit-identical to a from-scratch recomputation (a
//! property-based test below drives random arrivals/departures and checks
//! rates against [`max_min_fair`] exactly).
//!
//! ## Hierarchical (tree) mode
//!
//! [`FluidNetwork::with_topology`] with a non-flat [`Topology`] switches
//! the network to an incremental, sub-linear regime built for
//! thousand-node fabrics, where the O(flows) solver sweep per arrival is
//! unaffordable:
//!
//! * per-link flow counts are maintained incrementally (O(path) per
//!   arrival/departure), and each link carries a *quantized* fair share
//!   `Q(capacity / count)`;
//! * a flow's rate is fixed at admission to the minimum quantized share
//!   along its up/down path, and its completion time goes into a lazy
//!   min-heap (stale entries are generation-stamped and dropped on pop)
//!   — flows drain lazily, so `advance` is O(1);
//! * quantization makes shares insensitive to small count changes: a
//!   path link whose quantized share is unchanged by an update is a
//!   *skipped* domain, a changed one is *touched*; both are counted in
//!   [`SolverStats`] to demonstrate the asymptotics.
//!
//! Tree mode defines its own (deterministic) semantics: rates are not
//! re-fair-shared over surviving flows on every event as in flat mode,
//! so results are reproducible run-to-run but intentionally not
//! comparable to flat mode bit-for-bit. Flat mode is byte-for-byte
//! untouched by all of this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_core::{SimDuration, SimTime};

use crate::fair_share::{FairShare, FlowEndpoints, SolverStats};
use crate::params::NetworkParams;
use crate::topology::{LinkTable, Topology};

/// Handle to an active transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// Residual bytes below which a flow counts as drained (absorbs
/// picosecond-rounding error; at 100 Mb/s one picosecond moves ~1e-5 bytes).
const EPS_BYTES: f64 = 1e-3;

/// Memory-to-memory bandwidth used for loopback (self) sends, bytes/s.
/// Far faster than the fabric; rank-to-self copies are effectively free.
const LOOPBACK_BYTES_PER_SEC: f64 = 1.0e9;

#[derive(Debug, Clone)]
struct ActiveFlow {
    src: usize,
    dst: usize,
    remaining_bytes: f64,
    rate_bytes_per_sec: f64,
    /// Tree mode only: completion-heap generation stamp for this slot's
    /// current occupant (stale heap entries carry an older stamp).
    generation: u64,
}

/// Incremental per-link state for hierarchical (fat-tree) fabrics.
#[derive(Debug)]
struct TreeState {
    table: LinkTable,
    /// Live fabric flows crossing each link.
    count: Vec<u32>,
    /// Quantized fair share of each link at its current count.
    qshare: Vec<f64>,
    /// Rate quantum (bytes/s); shares are floored to a multiple of it so
    /// small count changes leave them — and every dependent subtree —
    /// untouched.
    quantum: f64,
    /// Pending completions `(finish, generation, slot)`; entries go
    /// stale when a slot is freed and are dropped lazily on pop.
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    next_generation: u64,
    active_count: usize,
    path_scratch: Vec<u32>,
}

impl TreeState {
    /// Re-derive link `l`'s quantized share after a count/capacity
    /// change. Returns whether the share actually moved (a *touched*
    /// domain, in [`SolverStats`] terms).
    fn requantize(&mut self, l: usize) -> bool {
        let c = self.count[l];
        let share = if c == 0 {
            self.table.capacity(l)
        } else {
            quantize(self.table.capacity(l) / c as f64, self.quantum)
        };
        let changed = share.to_bits() != self.qshare[l].to_bits();
        self.qshare[l] = share;
        changed
    }
}

/// Floor `share` to a multiple of `quantum`, except below one quantum
/// where the raw share is kept so rates never collapse to zero.
fn quantize(share: f64, quantum: f64) -> f64 {
    if share <= quantum {
        share
    } else {
        (share / quantum).floor() * quantum
    }
}

/// Absolute drain instant of `remaining_bytes` at `rate` starting at
/// `from` — the same upward-rounded formula flat mode's
/// `next_completion` uses.
fn completion_instant(from: SimTime, remaining_bytes: f64, rate: f64) -> SimTime {
    let secs = if remaining_bytes <= EPS_BYTES {
        0.0
    } else {
        remaining_bytes / rate
    };
    from + SimDuration::from_secs_f64(secs) + SimDuration::from_ps(1)
}

/// The flow occupying an active slot. Active slots always hold `Some`:
/// `start_flow` fills the slot before linking it into `active_slots`, and
/// `take_completed_into` clears both together. Free functions (not
/// methods) so callers can keep `active_slots` borrowed while touching
/// `flows`.
fn slot_flow(flows: &[Option<ActiveFlow>], slot: usize) -> &ActiveFlow {
    // simlint: allow(panic-path): active-slot invariant documented above; corrupted bookkeeping must stop the run
    flows[slot].as_ref().expect("active slot holds a flow")
}

/// Mutable counterpart of [`slot_flow`], same invariant.
fn slot_flow_mut(flows: &mut [Option<ActiveFlow>], slot: usize) -> &mut ActiveFlow {
    // simlint: allow(panic-path): active-slot invariant documented above; corrupted bookkeeping must stop the run
    flows[slot].as_mut().expect("active slot holds a flow")
}

/// A switched network carrying fluid flows between `nodes` endpoints.
#[derive(Debug)]
pub struct FluidNetwork {
    params: NetworkParams,
    nodes: usize,
    flows: Vec<Option<ActiveFlow>>,
    free_slots: Vec<usize>,
    /// Slots of live flows, kept sorted ascending so every scan visits
    /// flows in the same order a full `flows` sweep would.
    active_slots: Vec<usize>,
    /// Live flows with src != dst (the ones that contend for the switch).
    fabric_count: usize,
    /// Per node: how many live flows touch it as src or dst (a loopback
    /// flow counts twice). Makes `node_busy` O(1).
    node_touch: Vec<usize>,
    /// Per-node link capacity overrides (bytes/s), present only when a
    /// degraded-link fault is armed; `None` keeps every fast path on the
    /// uniform-capacity code and the output bit-identical to a build
    /// without fault support.
    link_caps: Option<Vec<f64>>,
    /// Hierarchical-fabric state; `None` keeps every code path on the
    /// historical flat model, byte-for-byte.
    tree: Option<Box<TreeState>>,
    last_advance: SimTime,
    total_bytes_delivered: f64,
    total_flows_completed: u64,
    total_rate_recomputes: u64,
    // Reused across rate recomputations so the event loop stays
    // allocation-free after warm-up.
    solver: FairShare,
    scratch_endpoints: Vec<FlowEndpoints>,
    scratch_rates: Vec<f64>,
}

impl FluidNetwork {
    /// A network of `nodes` endpoints with the given parameters.
    pub fn new(params: NetworkParams, nodes: usize) -> Self {
        params.validate();
        assert!(nodes > 0);
        FluidNetwork {
            params,
            nodes,
            flows: Vec::new(),
            free_slots: Vec::new(),
            active_slots: Vec::new(),
            fabric_count: 0,
            node_touch: vec![0; nodes],
            link_caps: None,
            tree: None,
            last_advance: SimTime::ZERO,
            total_bytes_delivered: 0.0,
            total_flows_completed: 0,
            total_rate_recomputes: 0,
            solver: FairShare::new(),
            scratch_endpoints: Vec::new(),
            scratch_rates: Vec::new(),
        }
    }

    /// A network of `nodes` endpoints routed over `topology`. A flat
    /// topology is exactly [`FluidNetwork::new`]; a fat-tree switches to
    /// the incremental tree-mode model (see the module docs).
    pub fn with_topology(params: NetworkParams, nodes: usize, topology: &Topology) -> Self {
        let mut net = Self::new(params, nodes);
        if *topology != Topology::Flat {
            let table = topology.link_table(nodes, net.params.goodput_bytes_per_sec());
            let num_links = table.num_links();
            // ~1e-6 of the edge rate: coarse enough that counts drifting
            // by a few flows rarely move a share, fine enough that the
            // rounding is irrelevant to simulated transfer times.
            let quantum = net.params.goodput_bytes_per_sec() / (1u64 << 20) as f64;
            net.tree = Some(Box::new(TreeState {
                qshare: table.capacities().to_vec(),
                count: vec![0; num_links],
                table,
                quantum,
                heap: BinaryHeap::new(),
                next_generation: 0,
                active_count: 0,
                path_scratch: Vec::new(),
            }));
        }
        net
    }

    /// True when the network runs the hierarchical (tree-mode) model.
    pub fn is_hierarchical(&self) -> bool {
        self.tree.is_some()
    }

    /// Network parameters in force.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Degrade `node`'s link to `factor` (in (0, 1]) of the nominal
    /// goodput — the fault-injection path for a failing cable or duplex
    /// mismatch. Call before traffic starts; cumulative if called twice
    /// for the same node. A factor of exactly 1.0 on every node still
    /// switches the solver to the per-node-capacity path, so only call
    /// this when a link is genuinely degraded.
    pub fn set_link_bandwidth_factor(&mut self, node: usize, factor: f64) {
        assert!(node < self.nodes, "endpoint out of range");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        if let Some(tree) = &mut self.tree {
            // Hierarchical fabric: the per-node fault hook degrades both
            // directions of the node's edge link in the link table.
            tree.table.scale_edge_capacity(node, factor);
            tree.requantize(2 * node);
            tree.requantize(2 * node + 1);
            return;
        }
        let goodput = self.params.goodput_bytes_per_sec();
        let caps = self
            .link_caps
            .get_or_insert_with(|| vec![goodput; self.nodes]);
        caps[node] *= factor;
    }

    /// The capacity of a lone fabric flow from `src` to `dst`: the full
    /// nominal goodput unless either endpoint's link is degraded.
    fn lone_flow_rate(&self, src: usize, dst: usize) -> f64 {
        match &self.link_caps {
            None => self.params.goodput_bytes_per_sec(),
            Some(caps) => caps[src].min(caps[dst]),
        }
    }

    /// Move the fluid state forward to `now`, draining flows at their
    /// current rates. Idempotent for equal `now`.
    pub fn advance(&mut self, now: SimTime) {
        // Always-on: `since` saturates, so a backwards `now` would silently
        // under-drain every active flow in release builds.
        assert!(now >= self.last_advance, "network time went backwards");
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 {
            for &slot in &self.active_slots {
                let f = slot_flow_mut(&mut self.flows, slot);
                let moved = f.rate_bytes_per_sec * dt;
                let drained = moved.min(f.remaining_bytes);
                f.remaining_bytes -= drained;
                self.total_bytes_delivered += drained;
            }
        }
        self.last_advance = now;
    }

    /// Begin transferring `bytes` from `src` to `dst` at `now`.
    /// Zero-byte flows are legal and complete immediately (control
    /// messages' payload; their latency cost is handled by the MPI layer).
    pub fn start_flow(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> FlowId {
        assert!(
            src < self.nodes && dst < self.nodes,
            "endpoint out of range"
        );
        if self.tree.is_some() {
            return self.start_flow_tree(now, src, dst, bytes);
        }
        self.advance(now);
        let flow = ActiveFlow {
            src,
            dst,
            remaining_bytes: bytes as f64,
            rate_bytes_per_sec: 0.0,
            generation: 0,
        };
        let id = if let Some(slot) = self.free_slots.pop() {
            self.flows[slot] = Some(flow);
            slot
        } else {
            self.flows.push(Some(flow));
            self.flows.len() - 1
        };
        let pos = self.active_slots.binary_search(&id).unwrap_err();
        self.active_slots.insert(pos, id);
        self.node_touch[src] += 1;
        self.node_touch[dst] += 1;

        if src == dst {
            // Loopback never contends: nobody else's rate changes.
            slot_flow_mut(&mut self.flows, id).rate_bytes_per_sec = LOOPBACK_BYTES_PER_SEC;
        } else {
            self.fabric_count += 1;
            if self.fabric_count == 1 {
                // A lone fabric flow takes the whole link (or the weaker
                // of its two endpoints' links when one is degraded).
                let rate = self.lone_flow_rate(src, dst);
                slot_flow_mut(&mut self.flows, id).rate_bytes_per_sec = rate;
            } else {
                self.recompute_rates();
            }
        }
        FlowId(id)
    }

    /// Tree-mode admission: bump the path links' counts, fix the flow's
    /// rate to the minimum quantized share along its path, and schedule
    /// its completion. O(path · log flows).
    fn start_flow_tree(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> FlowId {
        self.advance(now);
        let tree = self
            .tree
            .as_mut()
            // simlint: allow(panic-path): callers dispatch here only when tree mode was built; a None is corrupted state
            .expect("start_flow_tree requires tree mode");
        let generation = tree.next_generation;
        tree.next_generation += 1;

        let rate = if src == dst {
            LOOPBACK_BYTES_PER_SEC
        } else {
            let mut path = std::mem::take(&mut tree.path_scratch);
            path.clear();
            tree.table.push_path(src, dst, &mut path);
            let (mut touched, mut skipped) = (0u64, 0u64);
            let mut rate = f64::INFINITY;
            for &l in &path {
                let l = l as usize;
                tree.count[l] += 1;
                if tree.requantize(l) {
                    touched += 1;
                } else {
                    skipped += 1;
                }
                rate = rate.min(tree.qshare[l]);
            }
            tree.path_scratch = path;
            self.solver.note_domains(touched, skipped);
            self.fabric_count += 1;
            rate
        };

        let flow = ActiveFlow {
            src,
            dst,
            remaining_bytes: bytes as f64,
            rate_bytes_per_sec: rate,
            generation,
        };
        let id = if let Some(slot) = self.free_slots.pop() {
            self.flows[slot] = Some(flow);
            slot
        } else {
            self.flows.push(Some(flow));
            self.flows.len() - 1
        };
        self.node_touch[src] += 1;
        self.node_touch[dst] += 1;

        // simlint: allow(panic-path): same tree-mode dispatch invariant as above
        let tree = self.tree.as_mut().expect("tree mode");
        tree.active_count += 1;
        let finish = completion_instant(now, bytes as f64, rate);
        tree.heap.push(Reverse((finish, generation, id)));
        FlowId(id)
    }

    fn recompute_rates(&mut self) {
        self.scratch_endpoints.clear();
        for &slot in &self.active_slots {
            let f = slot_flow(&self.flows, slot);
            self.scratch_endpoints.push(FlowEndpoints {
                src: f.src,
                dst: f.dst,
            });
        }
        if self.scratch_endpoints.is_empty() {
            return;
        }
        self.total_rate_recomputes += 1;
        match &self.link_caps {
            None => self.solver.compute_into(
                &self.scratch_endpoints,
                self.nodes,
                self.params.goodput_bytes_per_sec(),
                LOOPBACK_BYTES_PER_SEC,
                &mut self.scratch_rates,
            ),
            Some(caps) => self.solver.compute_with_capacities_into(
                &self.scratch_endpoints,
                self.nodes,
                caps,
                LOOPBACK_BYTES_PER_SEC,
                &mut self.scratch_rates,
            ),
        }
        for (k, &slot) in self.active_slots.iter().enumerate() {
            slot_flow_mut(&mut self.flows, slot).rate_bytes_per_sec = self.scratch_rates[k];
        }
    }

    /// Absolute time at which the earliest active flow drains, or `None`
    /// when the network is idle. Always strictly at-or-after the last
    /// `advance` point; rounding is upward so the flow is guaranteed
    /// drained by the returned instant.
    pub fn next_completion(&self) -> Option<SimTime> {
        if let Some(tree) = &self.tree {
            // The heap head may be stale (its slot completed or was
            // recycled); waking at a stale instant is harmless — the
            // `take_completed_into` it triggers pops and discards the
            // entry, so the next query sees a fresh head and the engine
            // always makes progress.
            return tree.heap.peek().map(|&Reverse((t, _, _))| t);
        }
        let mut best: Option<f64> = None;
        for &slot in &self.active_slots {
            let f = slot_flow(&self.flows, slot);
            let secs = if f.remaining_bytes <= EPS_BYTES {
                0.0
            } else {
                f.remaining_bytes / f.rate_bytes_per_sec
            };
            best = Some(match best {
                None => secs,
                Some(b) => b.min(secs),
            });
        }
        best.map(|secs| {
            self.last_advance + SimDuration::from_secs_f64(secs) + SimDuration::from_ps(1)
        })
    }

    /// Advance to `now` and remove every drained flow, returning
    /// `(id, src, dst)` for each in id order. Allocates a fresh vector
    /// per call — every event-loop caller must use
    /// [`FluidNetwork::take_completed_into`] instead.
    #[deprecated(note = "allocates a Vec per call; use take_completed_into")]
    pub fn take_completed(&mut self, now: SimTime) -> Vec<(FlowId, usize, usize)> {
        let mut done = Vec::new();
        self.take_completed_into(now, &mut done);
        done
    }

    /// Advance to `now` and remove every drained flow, appending
    /// `(id, src, dst)` for each in id order to `done` (cleared first).
    /// Rates are only recomputed if a fabric flow actually finished.
    pub fn take_completed_into(&mut self, now: SimTime, done: &mut Vec<(FlowId, usize, usize)>) {
        done.clear();
        self.advance(now);
        if self.tree.is_some() {
            self.take_completed_tree(now, done);
            return;
        }
        let mut removed_fabric = 0usize;
        let mut keep = 0usize;
        for read in 0..self.active_slots.len() {
            let slot = self.active_slots[read];
            let f = slot_flow(&self.flows, slot);
            if f.remaining_bytes <= EPS_BYTES {
                let (src, dst) = (f.src, f.dst);
                done.push((FlowId(slot), src, dst));
                self.flows[slot] = None;
                self.free_slots.push(slot);
                self.node_touch[src] -= 1;
                self.node_touch[dst] -= 1;
                if src != dst {
                    removed_fabric += 1;
                }
                self.total_flows_completed += 1;
            } else {
                self.active_slots[keep] = slot;
                keep += 1;
            }
        }
        self.active_slots.truncate(keep);
        if removed_fabric > 0 {
            self.fabric_count -= removed_fabric;
            match self.fabric_count {
                0 => {} // only loopbacks remain; their rate is a constant
                1 => {
                    // The survivor takes the whole link; no solver needed.
                    let survivor = self.active_slots.iter().copied().find_map(|slot| {
                        let f = slot_flow(&self.flows, slot);
                        (f.src != f.dst).then_some((slot, f.src, f.dst))
                    });
                    if let Some((slot, src, dst)) = survivor {
                        let rate = self.lone_flow_rate(src, dst);
                        slot_flow_mut(&mut self.flows, slot).rate_bytes_per_sec = rate;
                    }
                }
                _ => self.recompute_rates(),
            }
        }
    }

    /// Tree-mode harvest: pop every due completion off the lazy heap,
    /// release the path links, and return the batch in slot order (the
    /// same order the flat path reports).
    fn take_completed_tree(&mut self, now: SimTime, done: &mut Vec<(FlowId, usize, usize)>) {
        let FluidNetwork {
            tree,
            flows,
            free_slots,
            node_touch,
            fabric_count,
            total_bytes_delivered,
            total_flows_completed,
            solver,
            ..
        } = self;
        let tree = tree
            .as_mut()
            // simlint: allow(panic-path): callers dispatch here only when tree mode was built; a None is corrupted state
            .expect("take_completed_tree requires tree mode");
        let (mut touched, mut skipped) = (0u64, 0u64);
        while let Some(&Reverse((finish, generation, slot))) = tree.heap.peek() {
            if finish > now {
                break;
            }
            tree.heap.pop();
            let stale = flows
                .get(slot)
                .and_then(|f| f.as_ref())
                .is_none_or(|f| f.generation != generation);
            if stale {
                continue;
            }
            // simlint: allow(panic-path): the stale check above just proved the slot holds this generation's flow
            let flow = flows[slot].take().expect("live slot holds a flow");
            done.push((FlowId(slot), flow.src, flow.dst));
            free_slots.push(slot);
            node_touch[flow.src] -= 1;
            node_touch[flow.dst] -= 1;
            *total_bytes_delivered += flow.remaining_bytes;
            *total_flows_completed += 1;
            tree.active_count -= 1;
            if flow.src != flow.dst {
                *fabric_count -= 1;
                let mut path = std::mem::take(&mut tree.path_scratch);
                path.clear();
                tree.table.push_path(flow.src, flow.dst, &mut path);
                for &l in &path {
                    let l = l as usize;
                    tree.count[l] -= 1;
                    if tree.requantize(l) {
                        touched += 1;
                    } else {
                        skipped += 1;
                    }
                }
                tree.path_scratch = path;
            }
        }
        solver.note_domains(touched, skipped);
        done.sort_unstable_by_key(|&(id, _, _)| id.0);
    }

    /// True while `node` has at least one active flow touching it (drives
    /// the NIC power state). O(1).
    pub fn node_busy(&self, node: usize) -> bool {
        self.node_touch[node] > 0
    }

    /// Number of in-flight flows. O(1).
    pub fn active_flows(&self) -> usize {
        match &self.tree {
            Some(tree) => tree.active_count,
            None => self.active_slots.len(),
        }
    }

    /// The current fair-share rate of a live flow, bytes/s.
    pub fn current_rate(&self, id: FlowId) -> Option<f64> {
        self.flows
            .get(id.0)
            .and_then(|slot| slot.as_ref())
            .map(|f| f.rate_bytes_per_sec)
    }

    /// Total payload bytes fully drained so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.total_bytes_delivered
    }

    /// Total flows completed so far.
    pub fn flows_completed(&self) -> u64 {
        self.total_flows_completed
    }

    /// How many times the full progressive-filling recompute ran (the
    /// loopback / lone-fabric fast paths don't count — that's the point
    /// of tracking it).
    pub fn rate_recomputes(&self) -> u64 {
        self.total_rate_recomputes
    }

    /// Work counters of the embedded max-min fair solver.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: usize) -> FluidNetwork {
        FluidNetwork::new(NetworkParams::catalyst_2950_100m(), nodes)
    }

    /// Test-side convenience over the allocation-free harvest call.
    fn take(n: &mut FluidNetwork, now: SimTime) -> Vec<(FlowId, usize, usize)> {
        let mut done = Vec::new();
        n.take_completed_into(now, &mut done);
        done
    }

    #[test]
    fn lone_flow_drains_at_link_rate() {
        let mut n = net(2);
        let bytes = 1_150_000u64; // ~0.1 s at 11.5 MB/s
        n.start_flow(SimTime::ZERO, 0, 1, bytes);
        let done_at = n.next_completion().unwrap();
        let expect = bytes as f64 / n.params().goodput_bytes_per_sec();
        assert!((done_at.as_secs_f64() - expect).abs() < 1e-6);
        let done = take(&mut n, done_at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 0);
        assert_eq!(done[0].2, 1);
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn sharing_halves_rate_then_releases() {
        let mut n = net(3);
        let b = 1_000_000u64;
        n.start_flow(SimTime::ZERO, 0, 1, b);
        n.start_flow(SimTime::ZERO, 0, 2, b);
        // Both share node 0's uplink: each finishes in 2x the solo time.
        let solo = b as f64 / n.params().goodput_bytes_per_sec();
        let t1 = n.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 2.0 * solo).abs() < 1e-6, "{t1}");
        let done = take(&mut n, t1);
        assert_eq!(done.len(), 2); // identical flows drain together
    }

    #[test]
    fn staggered_start_speeds_up_survivor() {
        let mut n = net(3);
        let b = 2_300_000u64; // ~0.2 s solo
        let gbps = n.params().goodput_bytes_per_sec();
        n.start_flow(SimTime::ZERO, 0, 1, b);
        // Second flow starts when the first is half done.
        let half = SimTime::from_secs(0) + SimDuration::from_secs_f64(0.5 * b as f64 / gbps);
        n.start_flow(half, 0, 2, b);
        // First flow: half at full rate + half at half rate = 1.5x solo.
        let t1 = n.next_completion().unwrap();
        let solo = b as f64 / gbps;
        assert!((t1.as_secs_f64() - 1.5 * solo).abs() < 1e-6);
        let done = take(&mut n, t1);
        assert_eq!(done.len(), 1);
        // Survivor then gets the full link back.
        let t2 = n.next_completion().unwrap();
        assert!(t2 > t1);
        assert_eq!(take(&mut n, t2).len(), 1);
    }

    #[test]
    fn survivor_rate_restored_without_full_recompute() {
        // Exercises the fabric_count == 1 fast path in take_completed.
        let mut n = net(3);
        n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        let long = n.start_flow(SimTime::ZERO, 0, 2, 5_000_000);
        let half = n.params().goodput_bytes_per_sec() / 2.0;
        assert_eq!(n.current_rate(long).unwrap().to_bits(), half.to_bits());
        let t1 = n.next_completion().unwrap();
        assert_eq!(take(&mut n, t1).len(), 1);
        let full = n.params().goodput_bytes_per_sec();
        assert_eq!(n.current_rate(long).unwrap().to_bits(), full.to_bits());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, 0, 1, 0);
        let t = n.next_completion().unwrap();
        assert!(t.as_secs_f64() < 1e-9);
        assert_eq!(take(&mut n, t).len(), 1);
    }

    #[test]
    fn node_busy_tracks_flow_presence() {
        let mut n = net(3);
        assert!(!n.node_busy(0));
        n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        assert!(n.node_busy(0));
        assert!(n.node_busy(1));
        assert!(!n.node_busy(2));
        let t = n.next_completion().unwrap();
        take(&mut n, t);
        assert!(!n.node_busy(0));
    }

    #[test]
    fn loopback_is_fast_and_does_not_contend() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, 0, 0, 10_000_000);
        n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        // Loopback 10 MB at 1 GB/s = 10 ms, fabric 1 MB ~ 87 ms.
        let t1 = n.next_completion().unwrap();
        let done = take(&mut n, t1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 0);
        assert_eq!(done[0].2, 0);
    }

    #[test]
    fn accounting_tracks_bytes_and_flows() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, 0, 1, 500_000);
        let t = n.next_completion().unwrap();
        take(&mut n, t);
        assert_eq!(n.flows_completed(), 1);
        assert!((n.bytes_delivered() - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn recompute_counter_skips_fast_paths() {
        let mut n = net(3);
        // Lone fabric flow and loopback: both fast paths, no recompute.
        n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        n.start_flow(SimTime::ZERO, 2, 2, 1_000_000);
        assert_eq!(n.rate_recomputes(), 0);
        assert_eq!(n.solver_stats().invocations, 0);
        // A second fabric flow forces the solver.
        n.start_flow(SimTime::ZERO, 0, 2, 1_000_000);
        assert_eq!(n.rate_recomputes(), 1);
        assert_eq!(n.solver_stats().invocations, 1);
    }

    #[test]
    fn incast_serializes_on_downlink() {
        // 4 senders to one root: each gets 1/4 of the root downlink, so the
        // batch takes 4x a solo transfer — the transpose gather bottleneck.
        let mut n = net(5);
        let b = 1_000_000u64;
        for s in 1..5 {
            n.start_flow(SimTime::ZERO, s, 0, b);
        }
        let solo = b as f64 / n.params().goodput_bytes_per_sec();
        let t = n.next_completion().unwrap();
        assert!((t.as_secs_f64() - 4.0 * solo).abs() < 1e-6);
        assert_eq!(take(&mut n, t).len(), 4);
    }

    #[test]
    fn slot_reuse_after_completion() {
        let mut n = net(2);
        let a = n.start_flow(SimTime::ZERO, 0, 1, 1000);
        let t = n.next_completion().unwrap();
        take(&mut n, t);
        let b = n.start_flow(t, 1, 0, 1000);
        assert_eq!(a.0, b.0, "slot should be recycled");
    }

    #[test]
    fn take_completed_into_reuses_buffer() {
        let mut n = net(2);
        let mut done = Vec::new();
        n.start_flow(SimTime::ZERO, 0, 1, 1000);
        let t = n.next_completion().unwrap();
        n.take_completed_into(t, &mut done);
        assert_eq!(done.len(), 1);
        n.start_flow(t, 0, 1, 1000);
        let t2 = n.next_completion().unwrap();
        n.take_completed_into(t2, &mut done);
        assert_eq!(done.len(), 1, "buffer must be cleared per call");
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn bad_endpoint_panics() {
        net(2).start_flow(SimTime::ZERO, 0, 5, 10);
    }

    #[test]
    fn degraded_link_slows_lone_flow() {
        let mut n = net(2);
        n.set_link_bandwidth_factor(1, 0.5);
        let id = n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        let half = n.params().goodput_bytes_per_sec() / 2.0;
        assert_eq!(n.current_rate(id).unwrap().to_bits(), half.to_bits());
        // Flows avoiding the weak node still get the full link.
        let mut ok = net(3);
        ok.set_link_bandwidth_factor(2, 0.5);
        let id = ok.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        let full = ok.params().goodput_bytes_per_sec();
        assert_eq!(ok.current_rate(id).unwrap().to_bits(), full.to_bits());
    }

    #[test]
    fn degraded_link_survivor_fast_path_respects_cap() {
        let mut n = net(3);
        n.set_link_bandwidth_factor(2, 0.25);
        n.start_flow(SimTime::ZERO, 0, 1, 1_000);
        let long = n.start_flow(SimTime::ZERO, 0, 2, 50_000_000);
        let t1 = n.next_completion().unwrap();
        assert_eq!(take(&mut n, t1).len(), 1);
        // The survivor crosses the weak link: a quarter rate, not full.
        let quarter = n.params().goodput_bytes_per_sec() * 0.25;
        assert!((n.current_rate(long).unwrap() - quarter).abs() < 1.0);
    }

    #[test]
    fn degraded_link_factors_compose() {
        let mut n = net(2);
        n.set_link_bandwidth_factor(0, 0.5);
        n.set_link_bandwidth_factor(0, 0.5);
        let id = n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        let quarter = n.params().goodput_bytes_per_sec() * 0.25;
        assert!((n.current_rate(id).unwrap() - quarter).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn degraded_link_rejects_zero_factor() {
        net(2).set_link_bandwidth_factor(0, 0.0);
    }

    fn tree_net(nodes: usize, radix: usize, oversub: f64) -> FluidNetwork {
        FluidNetwork::with_topology(
            NetworkParams::catalyst_2950_100m(),
            nodes,
            &Topology::FatTree { radix, oversub },
        )
    }

    #[test]
    fn flat_topology_stays_on_flat_model() {
        let n =
            FluidNetwork::with_topology(NetworkParams::catalyst_2950_100m(), 4, &Topology::Flat);
        assert!(!n.is_hierarchical());
        assert!(tree_net(4, 2, 2.0).is_hierarchical());
    }

    #[test]
    fn tree_lone_flow_drains_at_edge_rate() {
        let mut n = tree_net(4, 2, 1.0);
        let bytes = 1_150_000u64;
        n.start_flow(SimTime::ZERO, 0, 1, bytes);
        let done_at = n.next_completion().unwrap();
        let expect = bytes as f64 / n.params().goodput_bytes_per_sec();
        assert!((done_at.as_secs_f64() - expect).abs() < 1e-6);
        let done = take(&mut n, done_at);
        assert_eq!(done, vec![(FlowId(0), 0, 1)]);
        assert_eq!(n.active_flows(), 0);
        assert!(!n.node_busy(0));
    }

    #[test]
    fn tree_oversubscribed_trunk_throttles_cross_leaf_flow() {
        // radix 2, oversub 4: a cross-leaf flow is trunk-limited to half
        // the edge rate even with no contention.
        let mut n = tree_net(4, 2, 4.0);
        let id = n.start_flow(SimTime::ZERO, 0, 2, 1_000_000);
        let half = n.params().goodput_bytes_per_sec() / 2.0;
        let got = n.current_rate(id).unwrap();
        assert!((got - half).abs() <= half * 1e-6, "{got} vs {half}");
        // An intra-leaf flow still gets (close to) the full edge.
        let intra = n.start_flow(SimTime::ZERO, 2, 3, 1_000_000);
        let full = n.params().goodput_bytes_per_sec();
        let got = n.current_rate(intra).unwrap();
        assert!((got - full).abs() <= full * 1e-5, "{got} vs {full}");
    }

    #[test]
    fn tree_flows_all_drain_and_account() {
        let mut n = tree_net(8, 2, 2.0);
        let mut total = 0u64;
        for s in 0..8usize {
            let bytes = 100_000 + 50_000 * s as u64;
            n.start_flow(SimTime::ZERO, s, (s + 3) % 8, bytes);
            total += bytes;
        }
        let mut completed = 0;
        let mut guard = 0;
        while let Some(t) = n.next_completion() {
            completed += take(&mut n, t).len();
            guard += 1;
            assert!(guard < 1000, "tree network failed to converge");
        }
        assert_eq!(completed, 8);
        assert_eq!(n.active_flows(), 0);
        assert!((n.bytes_delivered() - total as f64).abs() < 1.0);
        assert_eq!(n.flows_completed(), 8);
        // Incremental domain bookkeeping fired.
        let stats = n.solver_stats();
        assert!(stats.domains_touched > 0, "{stats:?}");
    }

    #[test]
    fn tree_quantization_skips_unmoved_domains() {
        // Dense load on one path: once a link's count is past
        // sqrt(cap/quantum) (~1.2k here), one more flow no longer moves
        // the quantized share and the whole update is a skipped domain.
        let mut n = tree_net(4, 2, 1.0);
        for _ in 0..5000 {
            n.start_flow(SimTime::ZERO, 0, 2, 1_000_000);
        }
        let stats = n.solver_stats();
        assert!(
            stats.domains_skipped > stats.domains_touched,
            "quantization should skip most domains under dense load: {stats:?}"
        );
    }

    #[test]
    fn tree_runs_are_deterministic() {
        let run = || {
            let mut n = tree_net(8, 2, 2.0);
            let mut events = Vec::new();
            for i in 0..32usize {
                n.start_flow(
                    SimTime::ZERO,
                    i % 8,
                    (i * 5 + 2) % 8,
                    10_000 + i as u64 * 997,
                );
            }
            while let Some(t) = n.next_completion() {
                for (id, src, dst) in take(&mut n, t) {
                    events.push((t, id.0, src, dst));
                }
            }
            (events, n.bytes_delivered().to_bits(), n.solver_stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tree_degraded_edge_slows_flow() {
        let mut n = tree_net(4, 2, 1.0);
        n.set_link_bandwidth_factor(1, 0.5);
        let id = n.start_flow(SimTime::ZERO, 0, 1, 1_000_000);
        let half = n.params().goodput_bytes_per_sec() / 2.0;
        let got = n.current_rate(id).unwrap();
        assert!((got - half).abs() <= half * 1e-6, "{got} vs {half}");
    }

    #[test]
    fn tree_slot_reuse_keeps_completions_fresh() {
        let mut n = tree_net(4, 2, 1.0);
        let a = n.start_flow(SimTime::ZERO, 0, 1, 1000);
        let t = n.next_completion().unwrap();
        assert_eq!(take(&mut n, t).len(), 1);
        // Recycled slot with a new generation; the old heap entry is gone.
        let b = n.start_flow(t, 1, 0, 1000);
        assert_eq!(a.0, b.0, "slot should be recycled");
        let t2 = n.next_completion().unwrap();
        assert_eq!(take(&mut n, t2), vec![(b, 1, 0)]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::fair_share::max_min_fair;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Test-side convenience over the allocation-free harvest call.
    fn take_p(n: &mut FluidNetwork, now: SimTime) -> Vec<(FlowId, usize, usize)> {
        let mut done = Vec::new();
        n.take_completed_into(now, &mut done);
        done
    }

    proptest! {
        /// Any batch of flows fully drains, delivering exactly the bytes
        /// that were injected, regardless of contention pattern.
        #[test]
        fn prop_all_flows_drain_and_bytes_conserve(
            flows in proptest::collection::vec((0usize..6, 0usize..6, 1u64..5_000_000), 1..24)
        ) {
            let mut net = FluidNetwork::new(NetworkParams::catalyst_2950_100m(), 6);
            let mut total = 0u64;
            for &(src, dst, bytes) in &flows {
                net.start_flow(SimTime::ZERO, src, dst, bytes);
                total += bytes;
            }
            let mut completed = 0usize;
            let mut guard = 0;
            while let Some(t) = net.next_completion() {
                completed += take_p(&mut net, t).len();
                guard += 1;
                prop_assert!(guard < 10_000, "network failed to converge");
            }
            prop_assert_eq!(completed, flows.len());
            prop_assert_eq!(net.active_flows(), 0);
            prop_assert!((net.bytes_delivered() - total as f64).abs() < 1.0,
                "delivered {} of {}", net.bytes_delivered(), total);
        }

        /// Completion time is never better than the contention-free bound
        /// (bytes / link rate) and never worse than full serialization of
        /// everything sharing the slowest link.
        #[test]
        fn prop_completion_bounded(
            flows in proptest::collection::vec((0usize..4, 0usize..4, 100_000u64..2_000_000), 1..12)
        ) {
            let params = NetworkParams::catalyst_2950_100m();
            let rate = params.goodput_bytes_per_sec();
            let mut net = FluidNetwork::new(params, 4);
            let mut total_fabric = 0u64;
            let mut max_single = 0u64;
            for &(src, dst, bytes) in &flows {
                net.start_flow(SimTime::ZERO, src, dst, bytes);
                if src != dst {
                    total_fabric += bytes;
                    max_single = max_single.max(bytes);
                }
            }
            prop_assume!(total_fabric > 0);
            let mut last = SimTime::ZERO;
            while let Some(t) = net.next_completion() {
                take_p(&mut net, t);
                last = t;
            }
            let lower = max_single as f64 / rate;
            // Upper bound: all fabric bytes through one link pair.
            let upper = total_fabric as f64 / rate + 1e-6;
            prop_assert!(last.as_secs_f64() >= lower * 0.999, "{} < {}", last.as_secs_f64(), lower);
            prop_assert!(last.as_secs_f64() <= upper, "{} > {}", last.as_secs_f64(), upper);
        }

        /// The incremental rate maintenance (loopback skip, lone-fabric fast
        /// path, reused solver scratch) is bit-identical to a from-scratch
        /// progressive filling over the live flow set, under an arbitrary
        /// interleaving of arrivals and completions.
        #[test]
        fn prop_incremental_rates_match_from_scratch(
            ops in proptest::collection::vec(
                (any::<bool>(), 0usize..5, 0usize..5, 1_000u64..2_000_000), 1..40)
        ) {
            let params = NetworkParams::catalyst_2950_100m();
            let goodput = params.goodput_bytes_per_sec();
            let mut net = FluidNetwork::new(params, 5);
            let mut shadow: BTreeMap<usize, FlowEndpoints> = BTreeMap::new();
            let mut now = SimTime::ZERO;
            for &(complete, src, dst, bytes) in &ops {
                if complete {
                    if let Some(t) = net.next_completion() {
                        now = t;
                        for (id, _, _) in take_p(&mut net, now) {
                            shadow.remove(&id.0);
                        }
                    }
                } else {
                    let id = net.start_flow(now, src, dst, bytes);
                    shadow.insert(id.0, FlowEndpoints { src, dst });
                }
                let endpoints: Vec<FlowEndpoints> = shadow.values().copied().collect();
                let expect = max_min_fair(&endpoints, 5, goodput, LOOPBACK_BYTES_PER_SEC);
                for ((slot, _), exp) in shadow.iter().zip(&expect) {
                    let got = net.current_rate(FlowId(*slot)).unwrap();
                    prop_assert!(got.to_bits() == exp.to_bits(),
                        "slot {} rate {} != from-scratch {}", slot, got, exp);
                }
            }
        }
    }
}
