//! ACPI smart-battery model.
//!
//! The paper's primary energy measurement polls each laptop's smart battery
//! over ACPI: remaining capacity is reported in milliwatt-hours
//! (1 mWh = 3.6 J) and refreshes only every 15–20 seconds. Application
//! energy is the difference between the readings bracketing the run, which
//! is why the paper runs long problems or iterates executions. This module
//! reproduces exactly that quantized, slowly-refreshing view over the
//! simulation's ground-truth joules.

/// Joules per milliwatt-hour.
pub const J_PER_MWH: f64 = 3.6;

/// A battery that discharges as the node consumes energy and reports
/// remaining capacity quantized to whole mWh.
#[derive(Debug, Clone)]
pub struct SmartBattery {
    initial_mwh: f64,
    drawn_j: f64,
}

impl SmartBattery {
    /// A fully charged battery of `capacity_mwh` (Inspiron 8600 packs are
    /// ~72 Wh ≈ 72 000 mWh).
    pub fn new(capacity_mwh: f64) -> Self {
        assert!(capacity_mwh > 0.0 && capacity_mwh.is_finite());
        SmartBattery {
            initial_mwh: capacity_mwh,
            drawn_j: 0.0,
        }
    }

    /// The paper's platform battery.
    pub fn inspiron_8600() -> Self {
        SmartBattery::new(72_000.0)
    }

    /// Record that the node has drawn `joules` (cumulative total from an
    /// [`crate::EnergyMeter`], so pass the *delta* since the last call, or
    /// use [`SmartBattery::set_drawn`] with the running total).
    pub fn draw(&mut self, joules: f64) {
        assert!(joules >= 0.0, "cannot draw negative energy");
        self.drawn_j += joules;
    }

    /// Set the cumulative energy drawn since full charge (convenient when
    /// the caller keeps the meter's running total).
    pub fn set_drawn(&mut self, joules: f64) {
        assert!(
            joules >= self.drawn_j,
            "battery cannot be recharged mid-experiment (drawn {} -> {joules})",
            self.drawn_j
        );
        self.drawn_j = joules;
    }

    /// Remaining capacity as the ACPI interface reports it: whole mWh,
    /// floored (the register counts down), clamped at zero.
    pub fn reading_mwh(&self) -> u64 {
        let remaining = (self.initial_mwh - self.drawn_j / J_PER_MWH).max(0.0);
        remaining.floor() as u64
    }

    /// Ground-truth remaining capacity, mWh (not quantized).
    pub fn remaining_exact_mwh(&self) -> f64 {
        (self.initial_mwh - self.drawn_j / J_PER_MWH).max(0.0)
    }

    /// True once the pack is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining_exact_mwh() <= 0.0
    }

    /// Energy between two ACPI readings, in joules — the paper's
    /// measurement primitive (`(before - after) * 3.6 J`).
    pub fn energy_between(before_mwh: u64, after_mwh: u64) -> f64 {
        assert!(before_mwh >= after_mwh, "battery reading increased");
        (before_mwh - after_mwh) as f64 * J_PER_MWH
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_battery_reports_full() {
        let b = SmartBattery::new(1000.0);
        assert_eq!(b.reading_mwh(), 1000);
        assert!(!b.is_empty());
    }

    #[test]
    fn draw_quantizes_downward() {
        let mut b = SmartBattery::new(1000.0);
        b.draw(1.0); // far less than 1 mWh
        assert_eq!(b.reading_mwh(), 999); // floor: register already ticked
        b.draw(2.6); // total 3.6 J = exactly 1 mWh
        assert_eq!(b.reading_mwh(), 999);
        b.draw(3.6);
        assert_eq!(b.reading_mwh(), 998);
    }

    #[test]
    fn energy_between_matches_draw_within_quantization() {
        let mut b = SmartBattery::inspiron_8600();
        let before = b.reading_mwh();
        let true_j = 5000.0;
        b.draw(true_j);
        let after = b.reading_mwh();
        let measured = SmartBattery::energy_between(before, after);
        assert!((measured - true_j).abs() <= 2.0 * J_PER_MWH);
    }

    #[test]
    fn set_drawn_tracks_running_total() {
        let mut b = SmartBattery::new(100.0);
        b.set_drawn(36.0);
        assert_eq!(b.reading_mwh(), 90);
        b.set_drawn(72.0);
        assert_eq!(b.reading_mwh(), 80);
    }

    #[test]
    #[should_panic(expected = "recharged")]
    fn set_drawn_rejects_decrease() {
        let mut b = SmartBattery::new(100.0);
        b.set_drawn(36.0);
        b.set_drawn(10.0);
    }

    #[test]
    fn exhaustion_clamps_at_zero() {
        let mut b = SmartBattery::new(1.0);
        b.draw(1000.0);
        assert_eq!(b.reading_mwh(), 0);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "reading increased")]
    fn energy_between_rejects_increase() {
        let _ = SmartBattery::energy_between(10, 20);
    }

    proptest! {
        /// Quantized readings never deviate from ground truth by a full mWh.
        #[test]
        fn prop_quantization_error_bounded(draws in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut b = SmartBattery::new(1_000_000.0);
            for d in draws {
                b.draw(d);
                let exact = b.remaining_exact_mwh();
                let read = b.reading_mwh() as f64;
                prop_assert!(read <= exact + 1e-9);
                prop_assert!(exact - read < 1.0);
            }
        }
    }
}
