//! ACPI smart-battery model.
//!
//! The paper's primary energy measurement polls each laptop's smart battery
//! over ACPI: remaining capacity is reported in milliwatt-hours
//! (1 mWh = 3.6 J) and refreshes only every 15–20 seconds. Application
//! energy is the difference between the readings bracketing the run, which
//! is why the paper runs long problems or iterates executions. This module
//! reproduces exactly that quantized, slowly-refreshing view over the
//! simulation's ground-truth joules.

/// Joules per milliwatt-hour.
pub const J_PER_MWH: f64 = 3.6;

/// An anomalous reading from the measurement layer. Real instruments
/// produce these (a stuck register, a reading that "recharges" the pack
/// mid-run); the simulation surfaces them as values so harnesses can
/// degrade — drop the sample, reuse the last good reading, filter the
/// node — instead of aborting a whole batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasurementError {
    /// `draw` was asked to add negative energy.
    NegativeDraw {
        /// Offending delta, joules.
        joules: f64,
    },
    /// The cumulative drawn total went backwards — the battery would
    /// have to recharge mid-experiment.
    BatteryRecharged {
        /// Cumulative joules recorded so far.
        drawn_j: f64,
        /// Smaller total the caller tried to set.
        requested_j: f64,
    },
    /// The "after" ACPI reading is larger than the "before" one.
    ReadingIncreased {
        /// Reading at the start of the window, mWh.
        before_mwh: u64,
        /// Reading at the end of the window, mWh.
        after_mwh: u64,
    },
}

impl std::fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MeasurementError::NegativeDraw { joules } => {
                write!(f, "cannot draw negative energy ({joules} J)")
            }
            MeasurementError::BatteryRecharged {
                drawn_j,
                requested_j,
            } => write!(
                f,
                "battery cannot be recharged mid-experiment (drawn {drawn_j} -> {requested_j})"
            ),
            MeasurementError::ReadingIncreased {
                before_mwh,
                after_mwh,
            } => write!(
                f,
                "battery reading increased ({before_mwh} -> {after_mwh} mWh)"
            ),
        }
    }
}

impl std::error::Error for MeasurementError {}

/// A battery that discharges as the node consumes energy and reports
/// remaining capacity quantized to whole mWh.
#[derive(Debug, Clone)]
pub struct SmartBattery {
    initial_mwh: f64,
    drawn_j: f64,
}

impl SmartBattery {
    /// A fully charged battery of `capacity_mwh` (Inspiron 8600 packs are
    /// ~72 Wh ≈ 72 000 mWh).
    pub fn new(capacity_mwh: f64) -> Self {
        assert!(capacity_mwh > 0.0 && capacity_mwh.is_finite());
        SmartBattery {
            initial_mwh: capacity_mwh,
            drawn_j: 0.0,
        }
    }

    /// The paper's platform battery.
    pub fn inspiron_8600() -> Self {
        SmartBattery::new(72_000.0)
    }

    /// Record that the node has drawn `joules` (cumulative total from an
    /// [`crate::EnergyMeter`], so pass the *delta* since the last call, or
    /// use [`SmartBattery::set_drawn`] with the running total). A negative
    /// delta is a [`MeasurementError`] and leaves the pack unchanged.
    #[must_use = "a rejected draw leaves the pack unchanged; the caller must decide how to degrade"]
    pub fn draw(&mut self, joules: f64) -> Result<(), MeasurementError> {
        if joules < 0.0 {
            return Err(MeasurementError::NegativeDraw { joules });
        }
        self.drawn_j += joules;
        Ok(())
    }

    /// Set the cumulative energy drawn since full charge (convenient when
    /// the caller keeps the meter's running total). A decreasing total —
    /// the battery "recharging" mid-experiment — is a [`MeasurementError`]
    /// and leaves the pack unchanged.
    #[must_use = "a rejected total leaves the pack unchanged; the caller must decide how to degrade"]
    pub fn set_drawn(&mut self, joules: f64) -> Result<(), MeasurementError> {
        if joules < self.drawn_j {
            return Err(MeasurementError::BatteryRecharged {
                drawn_j: self.drawn_j,
                requested_j: joules,
            });
        }
        self.drawn_j = joules;
        Ok(())
    }

    /// Remaining capacity as the ACPI interface reports it: whole mWh,
    /// floored (the register counts down), clamped at zero.
    pub fn reading_mwh(&self) -> u64 {
        self.remaining_exact_mwh().floor() as u64
    }

    /// Ground-truth remaining capacity, mWh (not quantized).
    pub fn remaining_exact_mwh(&self) -> f64 {
        let drawn_mwh = self.drawn_j / J_PER_MWH;
        (self.initial_mwh - drawn_mwh).max(0.0)
    }

    /// True once the pack is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining_exact_mwh() <= 0.0
    }

    /// Energy between two ACPI readings, in joules — the paper's
    /// measurement primitive (`(before - after) * 3.6 J`). A reading that
    /// *increased* over the window is a [`MeasurementError`].
    #[must_use = "a dropped reading (or error) must not pass silently"]
    pub fn energy_between(before_mwh: u64, after_mwh: u64) -> Result<f64, MeasurementError> {
        if before_mwh < after_mwh {
            return Err(MeasurementError::ReadingIncreased {
                before_mwh,
                after_mwh,
            });
        }
        Ok((before_mwh - after_mwh) as f64 * J_PER_MWH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_battery_reports_full() {
        let b = SmartBattery::new(1000.0);
        assert_eq!(b.reading_mwh(), 1000);
        assert!(!b.is_empty());
    }

    #[test]
    fn draw_quantizes_downward() {
        let mut b = SmartBattery::new(1000.0);
        b.draw(1.0).unwrap(); // far less than 1 mWh
        assert_eq!(b.reading_mwh(), 999); // floor: register already ticked
        b.draw(2.6).unwrap(); // total 3.6 J = exactly 1 mWh
        assert_eq!(b.reading_mwh(), 999);
        b.draw(3.6).unwrap();
        assert_eq!(b.reading_mwh(), 998);
    }

    #[test]
    fn energy_between_matches_draw_within_quantization() {
        let mut b = SmartBattery::inspiron_8600();
        let before = b.reading_mwh();
        let true_j = 5000.0;
        b.draw(true_j).unwrap();
        let after = b.reading_mwh();
        let measured = SmartBattery::energy_between(before, after).unwrap();
        assert!((measured - true_j).abs() <= 2.0 * J_PER_MWH);
    }

    #[test]
    fn set_drawn_tracks_running_total() {
        let mut b = SmartBattery::new(100.0);
        b.set_drawn(36.0).unwrap();
        assert_eq!(b.reading_mwh(), 90);
        b.set_drawn(72.0).unwrap();
        assert_eq!(b.reading_mwh(), 80);
    }

    #[test]
    fn set_drawn_rejects_decrease_without_mutating() {
        let mut b = SmartBattery::new(100.0);
        b.set_drawn(36.0).unwrap();
        assert_eq!(
            b.set_drawn(10.0),
            Err(MeasurementError::BatteryRecharged {
                drawn_j: 36.0,
                requested_j: 10.0
            })
        );
        // The pack keeps its last consistent state.
        assert_eq!(b.reading_mwh(), 90);
    }

    #[test]
    fn draw_rejects_negative_without_mutating() {
        let mut b = SmartBattery::new(100.0);
        assert_eq!(
            b.draw(-1.0),
            Err(MeasurementError::NegativeDraw { joules: -1.0 })
        );
        assert_eq!(b.reading_mwh(), 100);
    }

    #[test]
    fn exhaustion_clamps_at_zero() {
        let mut b = SmartBattery::new(1.0);
        b.draw(1000.0).unwrap();
        assert_eq!(b.reading_mwh(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn energy_between_rejects_increase() {
        assert_eq!(
            SmartBattery::energy_between(10, 20),
            Err(MeasurementError::ReadingIncreased {
                before_mwh: 10,
                after_mwh: 20
            })
        );
    }

    #[test]
    fn measurement_errors_display_their_context() {
        let e = MeasurementError::ReadingIncreased {
            before_mwh: 10,
            after_mwh: 20,
        };
        assert!(e.to_string().contains("increased"));
        let e = MeasurementError::BatteryRecharged {
            drawn_j: 36.0,
            requested_j: 10.0,
        };
        assert!(e.to_string().contains("recharged"));
    }

    proptest! {
        /// Quantized readings never deviate from ground truth by a full mWh.
        #[test]
        fn prop_quantization_error_bounded(draws in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut b = SmartBattery::new(1_000_000.0);
            for d in draws {
                b.draw(d).unwrap();
                let exact = b.remaining_exact_mwh();
                let read = b.reading_mwh() as f64;
                prop_assert!(read <= exact + 1e-9);
                prop_assert!(exact - read < 1.0);
            }
        }
    }
}
