//! DVFS operating points and the Pentium-M SpeedStep ladder (paper Table 2).

use sim_core::SimDuration;
use std::fmt;

/// A single frequency/voltage pair the CPU can run at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core clock in hertz.
    pub freq_hz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Frequency in megahertz (how the paper labels its x-axes).
    pub fn mhz(&self) -> u32 {
        (self.freq_hz / 1e6).round() as u32
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz@{:.3}V", self.mhz(), self.voltage)
    }
}

/// Index into a [`DvfsLadder`], 0 = slowest point.
pub type OpIndex = usize;

/// An ordered set of operating points, slowest first.
#[derive(Debug, Clone)]
pub struct DvfsLadder {
    points: Vec<OperatingPoint>,
    transition_latency: SimDuration,
}

impl DvfsLadder {
    /// Build a ladder from points in any order; they are sorted ascending by
    /// frequency. Panics on an empty list or non-finite values.
    pub fn new(mut points: Vec<OperatingPoint>, transition_latency: SimDuration) -> Self {
        assert!(!points.is_empty(), "ladder needs at least one point");
        for p in &points {
            assert!(
                p.freq_hz.is_finite()
                    && p.freq_hz > 0.0
                    && p.voltage.is_finite()
                    && p.voltage > 0.0,
                "invalid operating point {p:?}"
            );
        }
        points.sort_by(|a, b| a.freq_hz.total_cmp(&b.freq_hz));
        DvfsLadder {
            points,
            transition_latency,
        }
    }

    /// The Intel Pentium M 1.4 GHz Enhanced SpeedStep ladder — the paper's
    /// Table 2 — with the manufacturer's ~10 µs lower-bound transition
    /// latency.
    pub fn pentium_m_1400() -> Self {
        DvfsLadder::new(
            vec![
                OperatingPoint {
                    freq_hz: 0.6e9,
                    voltage: 0.956,
                },
                OperatingPoint {
                    freq_hz: 0.8e9,
                    voltage: 1.180,
                },
                OperatingPoint {
                    freq_hz: 1.0e9,
                    voltage: 1.308,
                },
                OperatingPoint {
                    freq_hz: 1.2e9,
                    voltage: 1.436,
                },
                OperatingPoint {
                    freq_hz: 1.4e9,
                    voltage: 1.484,
                },
            ],
            SimDuration::from_micros(10),
        )
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false; a ladder has at least one point by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The point at `idx`. Panics when out of range.
    pub fn point(&self, idx: OpIndex) -> OperatingPoint {
        self.points[idx]
    }

    /// All points, slowest first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Index of the slowest point (always 0).
    pub fn lowest(&self) -> OpIndex {
        0
    }

    /// Index of the fastest point.
    pub fn highest(&self) -> OpIndex {
        self.points.len() - 1
    }

    /// One step down (slower), clamped at the bottom.
    pub fn step_down(&self, idx: OpIndex) -> OpIndex {
        idx.saturating_sub(1)
    }

    /// One step up (faster), clamped at the top.
    pub fn step_up(&self, idx: OpIndex) -> OpIndex {
        (idx + 1).min(self.highest())
    }

    /// Find the index whose frequency is closest to `mhz` (how experiment
    /// configs name points). Panics only on an impossible empty ladder.
    pub fn index_for_mhz(&self, mhz: u32) -> OpIndex {
        let target = mhz as f64 * 1e6;
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let err = (p.freq_hz - target).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best
    }

    /// Hardware latency of one frequency/voltage transition.
    pub fn transition_latency(&self) -> SimDuration {
        self.transition_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_matches_table_2() {
        let l = DvfsLadder::pentium_m_1400();
        let expected = [
            (600, 0.956),
            (800, 1.180),
            (1000, 1.308),
            (1200, 1.436),
            (1400, 1.484),
        ];
        assert_eq!(l.len(), 5);
        for (i, (mhz, v)) in expected.iter().enumerate() {
            assert_eq!(l.point(i).mhz(), *mhz);
            assert!((l.point(i).voltage - v).abs() < 1e-9);
        }
        assert_eq!(l.transition_latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn ladder_sorts_ascending() {
        let l = DvfsLadder::new(
            vec![
                OperatingPoint {
                    freq_hz: 2e9,
                    voltage: 1.2,
                },
                OperatingPoint {
                    freq_hz: 1e9,
                    voltage: 1.0,
                },
            ],
            SimDuration::ZERO,
        );
        assert_eq!(l.point(0).mhz(), 1000);
        assert_eq!(l.point(1).mhz(), 2000);
    }

    #[test]
    fn stepping_clamps_at_ends() {
        let l = DvfsLadder::pentium_m_1400();
        assert_eq!(l.step_down(0), 0);
        assert_eq!(l.step_up(l.highest()), l.highest());
        assert_eq!(l.step_down(2), 1);
        assert_eq!(l.step_up(2), 3);
    }

    #[test]
    fn index_for_mhz_finds_nearest() {
        let l = DvfsLadder::pentium_m_1400();
        assert_eq!(l.point(l.index_for_mhz(600)).mhz(), 600);
        assert_eq!(l.point(l.index_for_mhz(1400)).mhz(), 1400);
        assert_eq!(l.point(l.index_for_mhz(950)).mhz(), 1000);
        assert_eq!(l.point(l.index_for_mhz(5000)).mhz(), 1400);
    }

    #[test]
    fn display_formats_point() {
        let p = DvfsLadder::pentium_m_1400().point(0);
        assert_eq!(p.to_string(), "600MHz@0.956V");
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_ladder_panics() {
        let _ = DvfsLadder::new(vec![], SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid operating point")]
    fn negative_voltage_panics() {
        let _ = DvfsLadder::new(
            vec![OperatingPoint {
                freq_hz: 1e9,
                voltage: -1.0,
            }],
            SimDuration::ZERO,
        );
    }
}
