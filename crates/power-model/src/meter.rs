//! Per-component energy metering.
//!
//! [`EnergyMeter`] is the simulation's ground truth: it integrates the
//! node's piecewise-constant power over simulated time, split by component.
//! The `powerpack` crate's ACPI/Baytech pollers *sample* this ground truth
//! with the paper's coarse refresh rates; experiments then reconstruct
//! energy the way the paper did, and tests can quantify the measurement
//! error that methodology incurs.

use sim_core::{SimTime, TimeWeighted};

use crate::activity::CpuActivity;
use crate::op_point::OperatingPoint;
use crate::params::NodePowerParams;

/// Power-drawing component of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// CPU dynamic (switching) power.
    CpuDynamic,
    /// CPU static (leakage) power.
    CpuStatic,
    /// Constant system base (chipset, regulators, disk idle...).
    Base,
    /// DRAM interface activity above refresh.
    Memory,
    /// Network interface activity.
    Nic,
    /// DVFS transition losses (counted as impulses, not a rate).
    Transition,
}

impl Component {
    /// All components, in report order.
    pub const ALL: [Component; 6] = [
        Component::CpuDynamic,
        Component::CpuStatic,
        Component::Base,
        Component::Memory,
        Component::Nic,
        Component::Transition,
    ];
}

/// Energy totals per component, joules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyReport {
    /// CPU switching energy.
    pub cpu_dynamic_j: f64,
    /// CPU leakage energy.
    pub cpu_static_j: f64,
    /// System base energy.
    pub base_j: f64,
    /// DRAM activity energy.
    pub memory_j: f64,
    /// NIC activity energy.
    pub nic_j: f64,
    /// DVFS transition energy.
    pub transition_j: f64,
}

impl EnergyReport {
    /// Sum of all components.
    pub fn total_j(&self) -> f64 {
        self.cpu_dynamic_j
            + self.cpu_static_j
            + self.base_j
            + self.memory_j
            + self.nic_j
            + self.transition_j
    }

    /// Energy attributed to one component.
    pub fn component(&self, c: Component) -> f64 {
        match c {
            Component::CpuDynamic => self.cpu_dynamic_j,
            Component::CpuStatic => self.cpu_static_j,
            Component::Base => self.base_j,
            Component::Memory => self.memory_j,
            Component::Nic => self.nic_j,
            Component::Transition => self.transition_j,
        }
    }

    /// Element-wise sum, for aggregating across nodes.
    pub fn add(&self, other: &EnergyReport) -> EnergyReport {
        EnergyReport {
            cpu_dynamic_j: self.cpu_dynamic_j + other.cpu_dynamic_j,
            cpu_static_j: self.cpu_static_j + other.cpu_static_j,
            base_j: self.base_j + other.base_j,
            memory_j: self.memory_j + other.memory_j,
            nic_j: self.nic_j + other.nic_j,
            transition_j: self.transition_j + other.transition_j,
        }
    }
}

/// Integrates one node's power, split by component.
#[derive(Debug)]
pub struct EnergyMeter {
    params: NodePowerParams,
    cpu_dynamic: TimeWeighted,
    cpu_static: TimeWeighted,
    base: TimeWeighted,
    memory: TimeWeighted,
    nic: TimeWeighted,
    transition_j: f64,
    transitions: u64,
    // Current device state, re-applied whenever any input changes.
    op: OperatingPoint,
    activity: CpuActivity,
    /// When set, overrides the activity table's dynamic-power factor
    /// (blended compute segments with L2-stall cycles).
    custom_factor: Option<f64>,
    mem_active: bool,
    nic_active: bool,
}

impl EnergyMeter {
    /// A meter starting at `start` with the CPU halted at `op`.
    pub fn new(start: SimTime, params: NodePowerParams, op: OperatingPoint) -> Self {
        params.validate();
        let activity = CpuActivity::Halt;
        let mut m = EnergyMeter {
            cpu_dynamic: TimeWeighted::new(start, 0.0),
            cpu_static: TimeWeighted::new(start, 0.0),
            base: TimeWeighted::new(start, params.base_w),
            memory: TimeWeighted::new(start, 0.0),
            nic: TimeWeighted::new(start, 0.0),
            transition_j: 0.0,
            transitions: 0,
            params,
            op,
            activity,
            custom_factor: None,
            mem_active: false,
            nic_active: false,
        };
        m.reapply(start);
        m
    }

    #[inline]
    fn dyn_factor(&self) -> f64 {
        self.custom_factor
            .unwrap_or_else(|| self.params.cpu.activity.factor(self.activity))
    }

    #[inline]
    fn reapply(&mut self, now: SimTime) {
        self.cpu_dynamic.set(
            now,
            self.params
                .cpu
                .dynamic_power_with_factor(self.op, self.dyn_factor()),
        );
        self.cpu_static
            .set(now, self.params.cpu.static_power(self.op));
        self.base.set(now, self.params.base_w);
        self.memory.set(
            now,
            if self.mem_active {
                self.params.mem_active_w
            } else {
                0.0
            },
        );
        self.nic.set(
            now,
            if self.nic_active {
                self.params.nic_active_w
            } else {
                0.0
            },
        );
    }

    /// CPU moved to a new operating point at `now`; charges the transition
    /// energy impulse.
    pub fn set_operating_point(&mut self, now: SimTime, op: OperatingPoint) {
        if (op.freq_hz - self.op.freq_hz).abs() > f64::EPSILON {
            self.transition_j += self.params.transition_energy_j;
            self.transitions += 1;
        }
        self.op = op;
        self.reapply(now);
    }

    /// Move to `op` at `now` *without* charging a transition impulse —
    /// boot-time setup (the kernel picks the initial point before the
    /// workload starts, outside the measured window).
    pub fn jam_operating_point(&mut self, now: SimTime, op: OperatingPoint) {
        self.op = op;
        self.reapply(now);
    }

    /// CPU activity state changed at `now` (clears any blended factor).
    #[inline]
    pub fn set_activity(&mut self, now: SimTime, activity: CpuActivity) {
        self.activity = activity;
        self.custom_factor = None;
        self.reapply(now);
    }

    /// Enter `Active` with an explicit blended dynamic-power factor —
    /// compute segments mixing execution with L2-stall cycles.
    #[inline]
    pub fn set_active_blended(&mut self, now: SimTime, factor: f64) {
        assert!(
            factor.is_finite() && (0.0..=1.5).contains(&factor),
            "bad factor {factor}"
        );
        self.activity = CpuActivity::Active;
        self.custom_factor = Some(factor);
        self.reapply(now);
    }

    /// DRAM interface became active/inactive at `now`.
    #[inline]
    pub fn set_mem_active(&mut self, now: SimTime, active: bool) {
        self.mem_active = active;
        self.reapply(now);
    }

    /// NIC became active/inactive at `now`.
    #[inline]
    pub fn set_nic_active(&mut self, now: SimTime, active: bool) {
        self.nic_active = active;
        self.reapply(now);
    }

    /// Current operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// Current activity state.
    pub fn activity(&self) -> CpuActivity {
        self.activity
    }

    /// Instantaneous whole-node power draw, watts.
    pub fn power_now(&self) -> f64 {
        self.params.base_w
            + self
                .params
                .cpu
                .dynamic_power_with_factor(self.op, self.dyn_factor())
            + self.params.cpu.static_power(self.op)
            + if self.mem_active {
                self.params.mem_active_w
            } else {
                0.0
            }
            + if self.nic_active {
                self.params.nic_active_w
            } else {
                0.0
            }
    }

    /// Number of DVFS transitions charged so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Energy consumed through `now`, per component.
    pub fn report_at(&self, now: SimTime) -> EnergyReport {
        EnergyReport {
            cpu_dynamic_j: self.cpu_dynamic.integral_at(now),
            cpu_static_j: self.cpu_static.integral_at(now),
            base_j: self.base.integral_at(now),
            memory_j: self.memory.integral_at(now),
            nic_j: self.nic.integral_at(now),
            transition_j: self.transition_j,
        }
    }

    /// Total joules consumed through `now`.
    pub fn total_at(&self, now: SimTime) -> f64 {
        self.report_at(now).total_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op_point::DvfsLadder;
    use sim_core::SimDuration;

    fn ladder() -> DvfsLadder {
        DvfsLadder::pentium_m_1400()
    }

    fn meter() -> EnergyMeter {
        EnergyMeter::new(
            SimTime::ZERO,
            NodePowerParams::inspiron_8600(),
            ladder().point(4),
        )
    }

    #[test]
    fn halted_node_consumes_base_plus_idle_cpu() {
        let m = meter();
        let t = SimTime::from_secs(10);
        let r = m.report_at(t);
        assert!((r.base_j - 80.0).abs() < 1e-9); // 8 W base for 10 s
        assert!(r.cpu_dynamic_j > 0.0); // halt factor is small but nonzero
        assert!(r.cpu_dynamic_j < 25.0);
        assert_eq!(r.memory_j, 0.0);
        assert_eq!(r.nic_j, 0.0);
        assert_eq!(r.transition_j, 0.0);
    }

    #[test]
    fn active_cpu_dominates_when_fast() {
        let mut m = meter();
        m.set_activity(SimTime::ZERO, CpuActivity::Active);
        let t = SimTime::from_secs(1);
        let r = m.report_at(t);
        assert!((r.cpu_dynamic_j - 21.0).abs() < 1e-6, "{}", r.cpu_dynamic_j);
        assert!((r.cpu_static_j - 1.484).abs() < 1e-6);
    }

    #[test]
    fn transition_charges_impulse_once_per_change() {
        let mut m = meter();
        let l = ladder();
        m.set_operating_point(SimTime::from_secs(1), l.point(0));
        m.set_operating_point(SimTime::from_secs(2), l.point(0)); // same -> no charge
        m.set_operating_point(SimTime::from_secs(3), l.point(4));
        assert_eq!(m.transitions(), 2);
        let r = m.report_at(SimTime::from_secs(4));
        assert!((r.transition_j - 2.0 * 1.2e-3).abs() < 1e-12);
    }

    #[test]
    fn slower_point_draws_less_power() {
        let mut m = meter();
        m.set_activity(SimTime::ZERO, CpuActivity::Active);
        let p_fast = m.power_now();
        m.set_operating_point(SimTime::from_secs(1), ladder().point(0));
        let p_slow = m.power_now();
        assert!(p_slow < p_fast - 15.0, "fast {p_fast} slow {p_slow}");
    }

    #[test]
    fn memory_and_nic_add_their_draw() {
        let mut m = meter();
        let p0 = m.power_now();
        m.set_mem_active(SimTime::ZERO, true);
        let p1 = m.power_now();
        m.set_nic_active(SimTime::ZERO, true);
        let p2 = m.power_now();
        assert!((p1 - p0 - 1.8).abs() < 1e-12);
        assert!((p2 - p1 - 0.9).abs() < 1e-12);
        m.set_mem_active(SimTime::from_secs(5), false);
        let r = m.report_at(SimTime::from_secs(5));
        assert!((r.memory_j - 9.0).abs() < 1e-9);
    }

    #[test]
    fn report_totals_are_consistent() {
        let mut m = meter();
        m.set_activity(SimTime::ZERO, CpuActivity::BusyWait);
        m.set_operating_point(SimTime::from_secs(2), ladder().point(1));
        let t = SimTime::from_secs(7);
        let r = m.report_at(t);
        let sum: f64 = Component::ALL.iter().map(|c| r.component(*c)).sum();
        assert!((sum - r.total_j()).abs() < 1e-9);
        assert!((m.total_at(t) - r.total_j()).abs() < 1e-12);
    }

    #[test]
    fn energy_reports_add_elementwise() {
        let m = meter();
        let r = m.report_at(SimTime::from_secs(1));
        let doubled = r.add(&r);
        assert!((doubled.total_j() - 2.0 * r.total_j()).abs() < 1e-9);
    }

    #[test]
    fn power_now_matches_integral_slope() {
        let mut m = meter();
        m.set_activity(SimTime::ZERO, CpuActivity::Active);
        m.set_mem_active(SimTime::ZERO, true);
        let p = m.power_now();
        let dt = SimDuration::from_secs(3);
        let e = m.total_at(SimTime::ZERO + dt);
        assert!((e - p * 3.0).abs() < 1e-6, "e={e} p={p}");
    }
}
