//! Power parameters for the CPU and the whole node.
//!
//! Calibration note: absolute wattages are chosen so that whole-node power
//! and its frequency sensitivity reproduce the paper's measured *ratios*
//! (normalized energy/delay crescendos), not any particular meter reading.
//! The constants live here; the fit against the paper's headline numbers is
//! exercised by the calibration tests in the `pwrperf` core crate.

use crate::activity::{ActivityFactors, CpuActivity};
use crate::op_point::OperatingPoint;

/// First-order CMOS CPU power model.
///
/// `P_cpu(f, V, a) = k_dyn · factor(a) · f · V² + k_static · V`
#[derive(Debug, Clone)]
pub struct CpuPowerParams {
    /// Dynamic coefficient (W per Hz·V²); absorbs switched capacitance.
    pub k_dyn: f64,
    /// Static/leakage coefficient (W per V).
    pub k_static: f64,
    /// Per-state switching-activity factors.
    pub activity: ActivityFactors,
}

impl CpuPowerParams {
    /// Pentium M 1.4 GHz calibration: ≈21 W fully active at 1.4 GHz/1.484 V
    /// (vendor TDP ballpark) and ≈1.5 W of voltage-proportional static power
    /// at the top point.
    pub fn pentium_m_1400() -> Self {
        // k_dyn solves k * 1.4e9 * 1.484^2 = 21.0
        let k_dyn = 21.0 / (1.4e9 * 1.484 * 1.484);
        CpuPowerParams {
            k_dyn,
            k_static: 1.0, // 1.484 V -> 1.484 W leakage-like
            activity: ActivityFactors::pentium_m_default(),
        }
    }

    /// Dynamic power at `op` in activity state `a`, watts.
    pub fn dynamic_power(&self, op: OperatingPoint, a: CpuActivity) -> f64 {
        self.dynamic_power_with_factor(op, self.activity.factor(a))
    }

    /// Dynamic power at `op` for an explicit switching-activity factor
    /// (used for blended compute segments, see
    /// [`ActivityFactors::compute_blend`]).
    #[inline]
    pub fn dynamic_power_with_factor(&self, op: OperatingPoint, factor: f64) -> f64 {
        self.k_dyn * factor * op.freq_hz * op.voltage * op.voltage
    }

    /// Static (leakage) power at `op`, watts.
    #[inline]
    pub fn static_power(&self, op: OperatingPoint) -> f64 {
        self.k_static * op.voltage
    }

    /// Total CPU power at `op` in state `a`, watts.
    pub fn power(&self, op: OperatingPoint, a: CpuActivity) -> f64 {
        self.dynamic_power(op, a) + self.static_power(op)
    }
}

/// Whole-node power parameters (one Dell Inspiron 8600 analog).
#[derive(Debug, Clone)]
pub struct NodePowerParams {
    /// CPU model.
    pub cpu: CpuPowerParams,
    /// Constant "everything else" draw: chipset, DRAM refresh, disk idle,
    /// regulators — what remains when the CPU halts. Laptops idle around
    /// 12–18 W with the display off.
    pub base_w: f64,
    /// Extra draw while the DRAM interface is streaming (active reads /
    /// writes beyond refresh).
    pub mem_active_w: f64,
    /// Extra draw while the NIC is transmitting or receiving.
    pub nic_active_w: f64,
    /// Energy dissipated by one DVFS transition (voltage-regulator swing);
    /// small, but the paper observes dynamic control pays a real overhead.
    pub transition_energy_j: f64,
}

impl NodePowerParams {
    /// The calibrated Inspiron-8600 node used in all paper experiments.
    /// The 8 W base (display dimmed, disk spun down during runs) is fitted
    /// jointly with the activity factors to the paper's microbenchmark
    /// crescendos — large enough that slowing a CPU-bound code wastes
    /// energy (Fig. 7), small enough that memory- and communication-bound
    /// codes save 30–40% (Figs. 6 and 8).
    pub fn inspiron_8600() -> Self {
        NodePowerParams {
            cpu: CpuPowerParams::pentium_m_1400(),
            base_w: 8.0,
            mem_active_w: 1.8,
            nic_active_w: 0.9,
            transition_energy_j: 1.2e-3,
        }
    }

    /// Whole-node power with the CPU at `op` in state `a`, optionally with
    /// active memory traffic and NIC traffic, watts.
    pub fn node_power(
        &self,
        op: OperatingPoint,
        a: CpuActivity,
        mem_active: bool,
        nic_active: bool,
    ) -> f64 {
        self.base_w
            + self.cpu.power(op, a)
            + if mem_active { self.mem_active_w } else { 0.0 }
            + if nic_active { self.nic_active_w } else { 0.0 }
    }

    /// Worst-case whole-node power at `op`, watts: base plus CPU dynamic
    /// power at the largest activity factor any state can reach, plus
    /// static power, plus memory and NIC draw both active. A cluster
    /// power-cap controller that budgets `max_node_power_w` per node holds
    /// its cap at every instant regardless of what the nodes execute —
    /// measured power can only come in at or under this bound.
    pub fn max_node_power_w(&self, op: OperatingPoint) -> f64 {
        self.base_w
            + self
                .cpu
                .dynamic_power_with_factor(op, self.cpu.activity.max_factor())
            + self.cpu.static_power(op)
            + self.mem_active_w
            + self.nic_active_w
    }

    /// Sanity-check every parameter; used by the cluster builder so bad
    /// calibration constants fail fast.
    pub fn validate(&self) {
        assert!(self.cpu.k_dyn > 0.0 && self.cpu.k_dyn.is_finite());
        assert!(self.cpu.k_static >= 0.0 && self.cpu.k_static.is_finite());
        self.cpu.activity.validate();
        assert!(self.base_w >= 0.0 && self.base_w.is_finite());
        assert!(self.mem_active_w >= 0.0);
        assert!(self.nic_active_w >= 0.0);
        assert!(self.transition_energy_j >= 0.0);
    }
}

impl Default for NodePowerParams {
    fn default() -> Self {
        NodePowerParams::inspiron_8600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op_point::DvfsLadder;

    fn top() -> OperatingPoint {
        DvfsLadder::pentium_m_1400().point(4)
    }

    fn bottom() -> OperatingPoint {
        DvfsLadder::pentium_m_1400().point(0)
    }

    #[test]
    fn max_node_power_bounds_every_state() {
        let node = NodePowerParams::inspiron_8600();
        for op in [bottom(), top()] {
            let cap = node.max_node_power_w(op);
            for a in CpuActivity::ALL {
                for mem in [false, true] {
                    for nic in [false, true] {
                        let p = node.node_power(op, a, mem, nic);
                        assert!(p <= cap + 1e-12, "{a:?} mem={mem} nic={nic}: {p} > {cap}");
                    }
                }
            }
        }
    }

    #[test]
    fn active_power_at_top_matches_calibration() {
        let cpu = CpuPowerParams::pentium_m_1400();
        let p = cpu.dynamic_power(top(), CpuActivity::Active);
        assert!((p - 21.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn power_scales_as_f_v_squared() {
        let cpu = CpuPowerParams::pentium_m_1400();
        let hi = cpu.dynamic_power(top(), CpuActivity::Active);
        let lo = cpu.dynamic_power(bottom(), CpuActivity::Active);
        let expected_ratio = (0.6e9 * 0.956 * 0.956) / (1.4e9 * 1.484 * 1.484);
        assert!((lo / hi - expected_ratio).abs() < 1e-12);
        // The quoted headline: bottom point draws under a fifth the top's
        // dynamic power.
        assert!(lo / hi < 0.19);
    }

    #[test]
    fn static_power_tracks_voltage() {
        let cpu = CpuPowerParams::pentium_m_1400();
        assert!(cpu.static_power(top()) > cpu.static_power(bottom()));
        assert!((cpu.static_power(top()) - 1.484).abs() < 1e-9);
    }

    #[test]
    fn activity_ordering_carries_to_power() {
        let cpu = CpuPowerParams::pentium_m_1400();
        let p = |a| cpu.power(top(), a);
        assert!(p(CpuActivity::Active) > p(CpuActivity::MemStall));
        assert!(p(CpuActivity::MemStall) > p(CpuActivity::BusyWait));
        assert!(p(CpuActivity::BusyWait) > p(CpuActivity::Halt));
    }

    #[test]
    fn node_power_composes_components() {
        let node = NodePowerParams::inspiron_8600();
        let bare = node.node_power(top(), CpuActivity::Active, false, false);
        let with_mem = node.node_power(top(), CpuActivity::Active, true, false);
        let with_all = node.node_power(top(), CpuActivity::Active, true, true);
        assert!((with_mem - bare - node.mem_active_w).abs() < 1e-12);
        assert!((with_all - with_mem - node.nic_active_w).abs() < 1e-12);
        // Whole active node lands in the plausible laptop envelope.
        assert!(bare > 30.0 && bare < 45.0, "node power {bare}");
    }

    #[test]
    fn halted_node_is_dominated_by_base_power() {
        let node = NodePowerParams::inspiron_8600();
        let idle = node.node_power(bottom(), CpuActivity::Halt, false, false);
        assert!(idle < node.base_w + 3.0, "idle node {idle} W");
        assert!(idle > node.base_w);
    }

    #[test]
    fn default_params_validate() {
        NodePowerParams::default().validate();
    }
}
