//! # power-model — CMOS power and energy model for the DVS cluster
//!
//! Models the electrical side of the paper's testbed:
//!
//! * [`OperatingPoint`] / [`DvfsLadder`] — the Pentium M 1.4 GHz Enhanced
//!   SpeedStep ladder, exactly the paper's Table 2 (1.4 GHz @ 1.484 V down
//!   to 600 MHz @ 0.956 V), with the ~10 µs transition latency the Intel
//!   datasheet quotes.
//! * [`CpuPowerParams`] — the first-order CMOS laws the paper motivates in
//!   Section 2.1: dynamic power `P ∝ c·f·V²` plus a voltage-proportional
//!   static/leakage term.
//! * [`CpuActivity`] — what the CPU is doing (issuing instructions, stalled
//!   on DRAM, busy-waiting in the MPI progress loop, or halted). Activity
//!   scales the effective switched capacitance, which is how slack converts
//!   to energy savings.
//! * [`EnergyMeter`] — per-component (CPU dynamic/static, memory, NIC, base
//!   system, DVFS transitions) time integration of power into joules.
//! * [`SmartBattery`] — an ACPI smart battery that reports remaining
//!   capacity quantized to 1 mWh (3.6 J), reproducing the paper's
//!   measurement granularity.

pub mod activity;
pub mod battery;
pub mod meter;
pub mod op_point;
pub mod params;

pub use activity::{ActivityFactors, CpuActivity};
pub use battery::{MeasurementError, SmartBattery, J_PER_MWH};
pub use meter::{Component, EnergyMeter, EnergyReport};
pub use op_point::{DvfsLadder, OpIndex, OperatingPoint};
pub use params::{CpuPowerParams, NodePowerParams};
