//! CPU activity states and their effective switching-activity factors.
//!
//! The paper's central observation is that during application-dependent
//! slack — memory stalls, blocking MPI communication, load imbalance — the
//! CPU does less useful switching, so running it slower barely hurts
//! time-to-solution while saving substantial energy. We model this with a
//! small set of activity states that scale the CMOS dynamic-power term.

/// What the CPU is doing during a simulation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuActivity {
    /// Retiring instructions at full tilt (register/L1/L2-resident compute).
    Active,
    /// Stalled waiting on DRAM; the clock runs but few units switch.
    MemStall,
    /// Spinning in the MPI progress engine (MPICH busy-wait polling).
    BusyWait,
    /// Halted / in the idle loop (blocking wait, true idle).
    Halt,
}

impl CpuActivity {
    /// All states, useful for exhaustive tests and reports.
    pub const ALL: [CpuActivity; 4] = [
        CpuActivity::Active,
        CpuActivity::MemStall,
        CpuActivity::BusyWait,
        CpuActivity::Halt,
    ];

    /// Does the Linux `/proc/stat` accounting consider this state "busy"?
    ///
    /// Crucially, busy-wait polling *is* busy: this is why the paper finds
    /// the `cpuspeed` daemon nearly useless for MPI codes — the utilization
    /// metric it reads cannot see communication slack.
    pub fn counts_as_busy(self) -> bool {
        !matches!(self, CpuActivity::Halt)
    }
}

/// Effective switching-activity factors per state, as a fraction of the
/// fully-active dynamic power at the same operating point.
#[derive(Debug, Clone, Copy)]
pub struct ActivityFactors {
    /// Fully active execution. By definition 1.0 in the default model.
    pub active: f64,
    /// Stalled on DRAM: out-of-order window drained, most units quiet.
    pub mem_stall: f64,
    /// Busy-wait polling: a tight load/compare loop, caches hot.
    pub busy_wait: f64,
    /// Halted (`hlt`/C-state): only clock distribution and leakage-adjacent
    /// dynamic power remain.
    pub halt: f64,
    /// Waiting on on-die L2 hits: time scales with frequency (the cache
    /// runs at core clock) but most execution units idle between fills.
    /// Not a [`CpuActivity`] state — compute segments blend it with
    /// `active` in proportion to their L2-service cycles.
    pub l2_stall: f64,
}

impl ActivityFactors {
    /// Calibrated defaults for the Pentium-M node model, fitted to the
    /// paper's microbenchmark crescendos (see `pwrperf::calibration`):
    ///
    /// * memory stalls keep the out-of-order engine and prefetchers
    ///   churning, so they draw over half of full-tilt power (the paper's
    ///   Fig. 6 energy drop pins this);
    /// * the MPI busy-wait loop *looks* 100% busy to `/proc/stat` but is a
    ///   tight syscall-poll that keeps most execution units quiet — its
    ///   low draw is what limits the paper's communication-benchmark
    ///   energy savings (Fig. 8) to ~30% rather than the ~45% a
    ///   fully-switching core would give.
    pub fn pentium_m_default() -> Self {
        ActivityFactors {
            active: 1.0,
            mem_stall: 0.55,
            busy_wait: 0.30,
            halt: 0.08,
            l2_stall: 0.60,
        }
    }

    /// Look up the factor for a state.
    #[inline]
    pub fn factor(&self, activity: CpuActivity) -> f64 {
        match activity {
            CpuActivity::Active => self.active,
            CpuActivity::MemStall => self.mem_stall,
            CpuActivity::BusyWait => self.busy_wait,
            CpuActivity::Halt => self.halt,
        }
    }

    /// Panic if any factor is outside `[0, 1.5]` or non-finite. (Factors a
    /// little above 1.0 are legal: some codes switch more capacitance than
    /// the calibration workload.)
    pub fn validate(&self) {
        for a in CpuActivity::ALL {
            let f = self.factor(a);
            assert!(
                f.is_finite() && (0.0..=1.5).contains(&f),
                "activity factor for {a:?} out of range: {f}"
            );
        }
        assert!(
            self.l2_stall.is_finite() && (0.0..=1.5).contains(&self.l2_stall),
            "l2_stall factor out of range: {}",
            self.l2_stall
        );
    }

    /// The largest factor any state (or compute blend) can reach — the
    /// worst-case dynamic multiplier a power-cap controller must assume
    /// when it budgets a node without knowing what the node will run.
    /// Blends are convex combinations of `active` and `l2_stall`, so the
    /// maximum over the five fields bounds every reachable factor.
    pub fn max_factor(&self) -> f64 {
        self.active
            .max(self.mem_stall)
            .max(self.busy_wait)
            .max(self.halt)
            .max(self.l2_stall)
    }

    /// Effective dynamic-power factor of a compute segment that spends
    /// `cpu_cycles` executing and `l2_cycles` waiting on the on-die L2
    /// (both frequency-scaled): the cycle-weighted blend of `active` and
    /// `l2_stall`. Pure-compute segments return `active`.
    pub fn compute_blend(&self, cpu_cycles: f64, l2_cycles: f64) -> f64 {
        let total = cpu_cycles + l2_cycles;
        if total <= 0.0 {
            self.active
        } else {
            (cpu_cycles * self.active + l2_cycles * self.l2_stall) / total
        }
    }
}

impl Default for ActivityFactors {
    fn default() -> Self {
        ActivityFactors::pentium_m_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_factors_are_ordered_sensibly() {
        let f = ActivityFactors::default();
        f.validate();
        assert!(f.active >= f.mem_stall);
        assert!(f.mem_stall >= f.busy_wait);
        assert!(f.busy_wait > f.halt);
        assert!(f.halt > 0.0);
    }

    #[test]
    fn busy_accounting_matches_proc_stat_semantics() {
        assert!(CpuActivity::Active.counts_as_busy());
        assert!(CpuActivity::MemStall.counts_as_busy());
        assert!(CpuActivity::BusyWait.counts_as_busy());
        assert!(!CpuActivity::Halt.counts_as_busy());
    }

    #[test]
    fn factor_lookup_is_exhaustive() {
        let f = ActivityFactors {
            active: 1.0,
            mem_stall: 0.5,
            busy_wait: 0.7,
            halt: 0.1,
            l2_stall: 0.6,
        };
        assert_eq!(f.factor(CpuActivity::Active), 1.0);
        assert_eq!(f.factor(CpuActivity::MemStall), 0.5);
        assert_eq!(f.factor(CpuActivity::BusyWait), 0.7);
        assert_eq!(f.factor(CpuActivity::Halt), 0.1);
    }

    #[test]
    fn compute_blend_interpolates() {
        let f = ActivityFactors::default();
        assert_eq!(f.compute_blend(100.0, 0.0), f.active);
        assert_eq!(f.compute_blend(0.0, 100.0), f.l2_stall);
        assert_eq!(f.compute_blend(0.0, 0.0), f.active);
        let half = f.compute_blend(50.0, 50.0);
        assert!((half - (f.active + f.l2_stall) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "l2_stall factor out of range")]
    fn validate_rejects_bad_l2_stall() {
        ActivityFactors {
            l2_stall: 2.0,
            ..ActivityFactors::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_negative() {
        ActivityFactors {
            active: -0.1,
            ..ActivityFactors::default()
        }
        .validate();
    }
}
