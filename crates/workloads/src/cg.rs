//! NAS CG: conjugate gradient with an irregular sparse matrix.
//!
//! A beyond-the-paper workload (the paper's conclusion calls for studying
//! how "energy savings vary greatly with application"): CG is the
//! memory-bound counterpoint to FT's communication-bound transpose.
//! Per inner CG step, each rank:
//!
//! 1. **SpMV** — streams its partition's nonzeros (value + index) and
//!    gathers the source vector irregularly: heavily DRAM-bound;
//! 2. **dot products** — two short reductions, each an `MPI_Allreduce`
//!    of one double;
//! 3. **vector updates** — three AXPYs over the local partition;
//! 4. **exchange** — an allgather of the updated direction vector (the
//!    row-partitioned SpMV's communication).
//!
//! Sizes follow the NPB CG classes.

use dvfs::AppSpeedRequest;
use mem_model::{streaming_work, MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder};
use sim_core::DetRng;

use crate::CYCLES_PER_FLOP;

/// NPB CG problem classes (plus a tiny test class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgClass {
    /// n = 14 000, ~2.0 M nonzeros, 15 outer iterations.
    A,
    /// n = 75 000, ~13.7 M nonzeros, 75 outer iterations.
    B,
    /// n = 150 000, ~36.1 M nonzeros, 75 outer iterations.
    C,
    /// n = 1 000, 20 K nonzeros, 2 outer iterations — tests only.
    Test,
}

impl CgClass {
    /// Matrix dimension.
    pub fn n(self) -> u64 {
        match self {
            CgClass::A => 14_000,
            CgClass::B => 75_000,
            CgClass::C => 150_000,
            CgClass::Test => 1_000,
        }
    }

    /// Approximate nonzero count.
    pub fn nnz(self) -> u64 {
        match self {
            CgClass::A => 2_000_000,
            CgClass::B => 13_700_000,
            CgClass::C => 36_100_000,
            CgClass::Test => 20_000,
        }
    }

    /// Outer iterations (each runs [`CG_INNER_STEPS`] inner steps).
    pub fn outer_iterations(self) -> u32 {
        match self {
            CgClass::A => 15,
            CgClass::B | CgClass::C => 75,
            CgClass::Test => 2,
        }
    }
}

/// Inner CG steps per outer iteration (NPB fixes 25).
pub const CG_INNER_STEPS: u32 = 25;

/// CG run configuration.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// Problem class.
    pub class: CgClass,
    /// Rank count (row partitioning; any count >= 1).
    pub ranks: usize,
    /// Wrap each inner step's communication in dynamic-DVS calls.
    pub dynamic_dvs: bool,
    /// Per-rank work jitter amplitude.
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl CgConfig {
    /// Standard configuration for `class` on `ranks` nodes.
    pub fn paper_style(class: CgClass, ranks: usize) -> Self {
        CgConfig {
            class,
            ranks,
            dynamic_dvs: false,
            jitter: 0.01,
            seed: 0x4347, // "CG"
        }
    }

    /// Same run with dynamic-DVS instrumentation.
    pub fn with_dynamic_dvs(mut self) -> Self {
        self.dynamic_dvs = true;
        self
    }
}

/// Build all ranks' programs for one CG run.
pub fn cg_programs(config: &CgConfig) -> Vec<Program> {
    assert!(config.ranks > 0, "CG needs at least one rank");
    let root = DetRng::new(config.seed);
    (0..config.ranks)
        .map(|rank| build_rank(config, rank, root.fork(rank as u64)))
        .collect()
}

fn build_rank(config: &CgConfig, rank: usize, mut rng: DetRng) -> Program {
    let mut b = ProgramBuilder::new(rank, config.ranks);
    let hier = MemHierarchy::pentium_m_1400();
    let p = config.ranks as u64;
    let n = config.class.n();
    let nnz = config.class.nnz();
    let local_n = n / p;
    let local_nnz = nnz / p;

    // SpMV: stream (value f64 + column index u32) per nonzero, plus the
    // irregular gathers from the source vector (one potential miss per
    // nonzero, damped because consecutive nonzeros share cached rows).
    let spmv = WorkUnit {
        cpu_cycles: 2.0 * local_nnz as f64 * CYCLES_PER_FLOP,
        ..WorkUnit::ZERO
    }
    .add(&streaming_work(local_nnz * 12, 12, 0.0, &hier))
    .add(&WorkUnit {
        dram_accesses: local_nnz as f64 * 0.3,
        ..WorkUnit::ZERO
    });

    // Three AXPY-style vector updates over the local partition.
    let axpy = WorkUnit {
        cpu_cycles: 3.0 * 2.0 * local_n as f64 * CYCLES_PER_FLOP,
        ..WorkUnit::ZERO
    }
    .add(&streaming_work(3 * 3 * local_n * 8, 8, 0.0, &hier));

    // Two local dot products feeding the allreduces.
    let dots = WorkUnit {
        cpu_cycles: 2.0 * 2.0 * local_n as f64 * CYCLES_PER_FLOP,
        ..WorkUnit::ZERO
    }
    .add(&streaming_work(2 * local_n * 8, 8, 0.0, &hier));

    // One-time setup: build the sparse matrix.
    b.phase_begin("makea");
    b.compute(streaming_work(local_nnz * 12, 12, 4.0, &hier).scale(rng.jitter(config.jitter)));
    b.barrier();
    b.phase_end("makea");

    for _ in 0..config.class.outer_iterations() {
        for _ in 0..CG_INNER_STEPS {
            b.phase_begin("spmv");
            b.compute(spmv.scale(rng.jitter(config.jitter)));
            b.phase_end("spmv");

            b.phase_begin("reductions");
            b.compute(dots.scale(rng.jitter(config.jitter)));
            b.allreduce(8);
            b.allreduce(8);
            b.phase_end("reductions");

            b.phase_begin("axpy");
            b.compute(axpy.scale(rng.jitter(config.jitter)));
            b.phase_end("axpy");

            if config.ranks > 1 {
                b.phase_begin("exchange");
                if config.dynamic_dvs {
                    b.set_speed(AppSpeedRequest::Lowest);
                }
                b.allgather(local_n * 8);
                if config.dynamic_dvs {
                    b.set_speed(AppSpeedRequest::Restore);
                }
                b.phase_end("exchange");
            }
        }
        // Outer residual norm.
        b.allreduce(8);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Op;

    #[test]
    fn class_parameters_match_npb() {
        assert_eq!(CgClass::A.n(), 14_000);
        assert_eq!(CgClass::B.n(), 75_000);
        assert_eq!(CgClass::B.outer_iterations(), 75);
        assert!(CgClass::C.nnz() > CgClass::B.nnz());
    }

    #[test]
    fn builds_one_program_per_rank() {
        let p = cg_programs(&CgConfig::paper_style(CgClass::Test, 4));
        assert_eq!(p.len(), 4);
        assert!(!p[0].is_empty());
    }

    #[test]
    fn single_rank_has_no_exchange() {
        let p = cg_programs(&CgConfig::paper_style(CgClass::Test, 1));
        assert!(!p[0]
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Send { .. } | Op::SendRecv { .. })));
    }

    #[test]
    fn spmv_is_memory_bound() {
        let hier = MemHierarchy::pentium_m_1400();
        let p = cg_programs(&CgConfig::paper_style(CgClass::B, 8));
        // Find the biggest compute op — the SpMV — and check its split.
        let spmv = p[0]
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Compute(w) => Some(*w),
                _ => None,
            })
            .max_by(|a, b| a.dram_accesses.total_cmp(&b.dram_accesses))
            .unwrap();
        assert!(
            spmv.scaled_fraction(&hier, 1.4e9) < 0.5,
            "{}",
            spmv.scaled_fraction(&hier, 1.4e9)
        );
    }

    #[test]
    fn dynamic_variant_wraps_exchanges_only() {
        let plain = cg_programs(&CgConfig::paper_style(CgClass::Test, 4));
        let dynamic = cg_programs(&CgConfig::paper_style(CgClass::Test, 4).with_dynamic_dvs());
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|op| matches!(op, Op::SetSpeed(_)))
                .count()
        };
        assert_eq!(count(&plain[0]), 0);
        let steps = CgClass::Test.outer_iterations() * CG_INNER_STEPS;
        assert_eq!(count(&dynamic[0]), 2 * steps as usize);
    }

    #[test]
    fn jitter_is_deterministic() {
        let cfg = CgConfig::paper_style(CgClass::Test, 2);
        assert_eq!(cg_programs(&cfg)[0].ops(), cg_programs(&cfg)[0].ops());
    }
}
