//! NAS Parallel Benchmarks FT: 3-D FFT with all-to-all transpose.
//!
//! Structure per iteration (matching NPB 2.x FT):
//!
//! 1. `evolve` — pointwise multiply of the frequency-domain data by
//!    exponential factors (streaming, ~6 flops/point);
//! 2. `fft()` — the paper's instrumented function: two local 1-D FFT
//!    passes, the transpose (MPI all-to-all of the local partition), and
//!    the third local pass;
//! 3. `checksum` — a small allreduce.
//!
//! FFT work is the textbook `5 · N · log2(N)` flops per full 3-D
//! transform, split 2/3 before and 1/3 after the transpose. FFT passes
//! stream the local partition through DRAM (the strides are cache-hostile
//! at these problem sizes).

use mem_model::{streaming_work, MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder};
use sim_core::DetRng;

use crate::CYCLES_PER_FLOP;

/// NPB problem classes used by the paper (plus a tiny test class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtClass {
    /// 256×256×128, 6 iterations.
    A,
    /// 512×256×256, 20 iterations.
    B,
    /// 512×512×512, 20 iterations.
    C,
    /// 64×64×32, 3 iterations — not an NPB class; fast unit tests only.
    Test,
}

impl FtClass {
    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(self) -> (u64, u64, u64) {
        match self {
            FtClass::A => (256, 256, 128),
            FtClass::B => (512, 256, 256),
            FtClass::C => (512, 512, 512),
            FtClass::Test => (64, 64, 32),
        }
    }

    /// Official iteration count.
    pub fn iterations(self) -> u32 {
        match self {
            FtClass::A => 6,
            FtClass::B => 20,
            FtClass::C => 20,
            FtClass::Test => 3,
        }
    }

    /// Total grid points.
    pub fn total_points(self) -> u64 {
        let (x, y, z) = self.dims();
        x * y * z
    }
}

/// FT run configuration.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Problem class.
    pub class: FtClass,
    /// Number of ranks (one per node). NPB FT requires a power of two.
    pub ranks: usize,
    /// Insert the paper's dynamic-DVS instrumentation: drop to the lowest
    /// operating point on entry to `fft()`, restore on exit.
    pub dynamic_dvs: bool,
    /// Per-rank work jitter amplitude (fraction, e.g. 0.01 = ±1%).
    pub jitter: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
    /// Run this many iterations instead of the class's NPB count.
    /// Scale benchmarking uses `Some(1)` so a 4096-rank class-C run
    /// exercises one full evolve→fft→checksum epoch without paying for
    /// twenty.
    pub iterations_override: Option<u32>,
}

impl FtConfig {
    /// The paper's FT runs: `class` on `ranks` processors, no
    /// instrumentation.
    pub fn paper(class: FtClass, ranks: usize) -> Self {
        FtConfig {
            class,
            ranks,
            dynamic_dvs: false,
            jitter: 0.01,
            seed: 0x46_54, // "FT"
            iterations_override: None,
        }
    }

    /// A scale-benchmark run: class C work decomposition on `ranks`
    /// processors, a single iteration.
    pub fn scale(ranks: usize) -> Self {
        FtConfig {
            iterations_override: Some(1),
            ..FtConfig::paper(FtClass::C, ranks)
        }
    }

    /// Same run with dynamic-DVS instrumentation.
    pub fn with_dynamic_dvs(mut self) -> Self {
        self.dynamic_dvs = true;
        self
    }

    /// Iterations to run: the override if set, else the class's count.
    pub fn iterations(&self) -> u32 {
        self.iterations_override
            .unwrap_or_else(|| self.class.iterations())
    }
}

/// Bytes per grid point (complex double).
const BYTES_PER_POINT: u64 = 16;

/// Flops per point in `evolve`.
const EVOLVE_FLOPS_PER_POINT: f64 = 6.0;

/// Build all ranks' programs for one FT run.
pub fn ft_programs(config: &FtConfig) -> Vec<Program> {
    assert!(
        config.ranks > 0 && config.ranks.is_power_of_two(),
        "NPB FT needs a power-of-two rank count"
    );
    let root = DetRng::new(config.seed);
    (0..config.ranks)
        .map(|rank| build_rank(config, rank, root.fork(rank as u64)))
        .collect()
}

fn build_rank(config: &FtConfig, rank: usize, mut rng: DetRng) -> Program {
    let mut b = ProgramBuilder::new(rank, config.ranks);
    let hier = MemHierarchy::pentium_m_1400();
    let p = config.ranks as u64;
    let n = config.class.total_points();
    let local_points = n / p;
    let local_bytes = local_points * BYTES_PER_POINT;
    // 5 N log2 N flops per full 3-D FFT, this rank's share.
    let fft_flops = 5.0 * local_points as f64 * (n as f64).log2();
    let alltoall_bytes_per_pair = local_bytes / p;

    // One-time setup: index map + initial conditions (two streaming passes).
    let setup = streaming_work(2 * local_bytes, 8, 2.0, &hier);
    b.phase_begin("setup");
    b.compute(jittered(setup, &mut rng, config.jitter));
    b.barrier();
    b.phase_end("setup");

    for _ in 0..config.iterations() {
        // evolve: pointwise multiply, streaming read+write.
        let evolve = WorkUnit {
            cpu_cycles: EVOLVE_FLOPS_PER_POINT * local_points as f64 * CYCLES_PER_FLOP,
            ..WorkUnit::ZERO
        }
        .add(&streaming_work(
            2 * local_bytes,
            BYTES_PER_POINT,
            0.0,
            &hier,
        ));
        b.phase_begin("evolve");
        b.compute(jittered(evolve, &mut rng, config.jitter));
        b.phase_end("evolve");

        // fft(): the paper's instrumented slack-heavy function.
        b.phase_begin("fft");
        if config.dynamic_dvs {
            b.set_speed(dvfs::AppSpeedRequest::Lowest);
        }
        // Two local passes before the transpose (2/3 of the flops),
        // streaming the partition twice (read + write per pass).
        let pre = WorkUnit {
            cpu_cycles: fft_flops * (2.0 / 3.0) * CYCLES_PER_FLOP,
            ..WorkUnit::ZERO
        }
        .add(&streaming_work(
            4 * local_bytes,
            BYTES_PER_POINT,
            0.0,
            &hier,
        ));
        b.compute(jittered(pre, &mut rng, config.jitter));
        // The distributed transpose.
        b.alltoall(alltoall_bytes_per_pair);
        // Third local pass (1/3 of the flops).
        let post = WorkUnit {
            cpu_cycles: fft_flops * (1.0 / 3.0) * CYCLES_PER_FLOP,
            ..WorkUnit::ZERO
        }
        .add(&streaming_work(
            2 * local_bytes,
            BYTES_PER_POINT,
            0.0,
            &hier,
        ));
        b.compute(jittered(post, &mut rng, config.jitter));
        if config.dynamic_dvs {
            b.set_speed(dvfs::AppSpeedRequest::Restore);
        }
        b.phase_end("fft");

        // checksum: tiny local reduction + allreduce.
        b.phase_begin("checksum");
        b.compute(WorkUnit::pure_cpu(1_000.0 + local_points as f64 * 0.01));
        b.allreduce(16);
        b.phase_end("checksum");
    }
    b.build()
}

fn jittered(w: WorkUnit, rng: &mut DetRng, amplitude: f64) -> WorkUnit {
    w.scale(rng.jitter(amplitude))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Op;

    #[test]
    fn class_dims_match_npb() {
        assert_eq!(FtClass::A.dims(), (256, 256, 128));
        assert_eq!(FtClass::B.dims(), (512, 256, 256));
        assert_eq!(FtClass::C.dims(), (512, 512, 512));
        assert_eq!(FtClass::B.iterations(), 20);
        assert_eq!(FtClass::C.total_points(), 512 * 512 * 512);
    }

    #[test]
    fn builds_one_program_per_rank() {
        let p = ft_programs(&FtConfig::paper(FtClass::Test, 4));
        assert_eq!(p.len(), 4);
        assert!(!p[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_ranks_rejected() {
        let _ = ft_programs(&FtConfig::paper(FtClass::Test, 6));
    }

    #[test]
    fn alltoall_volume_matches_partition() {
        // Every rank ships its whole partition (minus the self block) per
        // iteration through the transpose; plus barrier/checksum traffic.
        let cfg = FtConfig::paper(FtClass::Test, 4);
        let p = ft_programs(&cfg);
        let n = FtClass::Test.total_points();
        let local_bytes = n / 4 * 16;
        let per_iter_transpose = local_bytes / 4 * 3; // 3 peers
        let lower_bound = per_iter_transpose * FtClass::Test.iterations() as u64;
        let sent = p[0].bytes_sent();
        assert!(
            sent >= lower_bound,
            "sent {sent} < transpose volume {lower_bound}"
        );
        assert!(sent < lower_bound * 2, "sent {sent} unreasonably high");
    }

    #[test]
    fn dynamic_variant_instruments_fft_only() {
        let plain = ft_programs(&FtConfig::paper(FtClass::Test, 4));
        let dynamic = ft_programs(&FtConfig::paper(FtClass::Test, 4).with_dynamic_dvs());
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|op| matches!(op, Op::SetSpeed(_)))
                .count()
        };
        assert_eq!(count(&plain[0]), 0);
        // Two requests (down + restore) per iteration.
        assert_eq!(count(&dynamic[0]), 2 * FtClass::Test.iterations() as usize);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = FtConfig::paper(FtClass::Test, 2);
        let a = ft_programs(&cfg);
        let b = ft_programs(&cfg);
        assert_eq!(a[0].ops().len(), b[0].ops().len());
        for (x, y) in a[0].ops().iter().zip(b[0].ops()) {
            assert_eq!(x, y);
        }
        // And ranks differ from each other (independent jitter streams).
        assert_ne!(a[0].ops(), a[1].ops());
    }

    #[test]
    fn fft_phase_markers_are_balanced() {
        let p = ft_programs(&FtConfig::paper(FtClass::Test, 2));
        let begins = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::PhaseBegin("fft")))
            .count();
        let ends = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::PhaseEnd("fft")))
            .count();
        assert_eq!(begins, FtClass::Test.iterations() as usize);
        assert_eq!(begins, ends);
    }

    #[test]
    fn class_c_is_communication_dominated() {
        // Structural sanity behind the paper's FT result: wire time for the
        // transpose exceeds frequency-scaled compute time at 1.4 GHz.
        let n = FtClass::C.total_points();
        let p = 8u64;
        let local_bytes = n / p * 16;
        let wire_secs = (local_bytes - local_bytes / p) as f64 / (100e6 * 0.92 / 8.0);
        let fft_flops = 5.0 * (n / p) as f64 * (n as f64).log2();
        let compute_secs = fft_flops / 1.4e9;
        assert!(
            wire_secs > 5.0 * compute_secs,
            "wire {wire_secs}s vs compute {compute_secs}s"
        );
    }
}
