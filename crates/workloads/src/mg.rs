//! NAS MG: V-cycle multigrid with nearest-neighbour halo exchange.
//!
//! The third distributed communication pattern in the suite (FT:
//! all-to-all; transpose: permutation + incast; CG: allgather +
//! allreduce; **MG: 6-neighbour ghost-cell exchange** on a 3-D process
//! grid, repeated at every grid level of the V-cycle). Communication
//! volume shrinks by 4× per level while message *count* stays constant,
//! so MG stresses latency and small-message overhead — the
//! frequency-scaled part of communication — more than any other kernel.
//!
//! Sizes follow the NPB MG classes.

use mem_model::{streaming_work, MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder, Tag};
use sim_core::DetRng;

use crate::CYCLES_PER_FLOP;

/// NPB MG problem classes (plus a tiny test class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgClass {
    /// 256³ grid, 4 iterations.
    A,
    /// 256³ grid, 20 iterations.
    B,
    /// 512³ grid, 20 iterations.
    C,
    /// 32³ grid, 2 iterations — tests only.
    Test,
}

impl MgClass {
    /// Grid edge length (the grid is cubic).
    pub fn n(self) -> u64 {
        match self {
            MgClass::A | MgClass::B => 256,
            MgClass::C => 512,
            MgClass::Test => 32,
        }
    }

    /// V-cycle iterations.
    pub fn iterations(self) -> u32 {
        match self {
            MgClass::A => 4,
            MgClass::B | MgClass::C => 20,
            MgClass::Test => 2,
        }
    }
}

/// MG run configuration.
#[derive(Debug, Clone)]
pub struct MgConfig {
    /// Problem class.
    pub class: MgClass,
    /// Rank count; must factor into a 3-D grid (powers of two work best).
    pub ranks: usize,
    /// Wrap each level's halo exchange in dynamic-DVS calls.
    pub dynamic_dvs: bool,
    /// Per-rank work jitter amplitude.
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl MgConfig {
    /// Standard configuration.
    pub fn paper_style(class: MgClass, ranks: usize) -> Self {
        MgConfig {
            class,
            ranks,
            dynamic_dvs: false,
            jitter: 0.01,
            seed: 0x4D47, // "MG"
        }
    }

    /// Same run with dynamic-DVS instrumentation.
    pub fn with_dynamic_dvs(mut self) -> Self {
        self.dynamic_dvs = true;
        self
    }
}

/// Factor `p` into a near-cubic 3-D grid `(px, py, pz)` with
/// `px >= py >= pz` (the NPB processor-grid rule).
pub fn process_grid_3d(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut best_surface = usize::MAX;
    for pz in 1..=p {
        if !p.is_multiple_of(pz) {
            continue;
        }
        let rest = p / pz;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            let px = rest / py;
            if px < py || py < pz {
                continue;
            }
            // Minimize the communication surface px*py + py*pz + px*pz.
            let surface = px * py + py * pz + px * pz;
            if surface < best_surface {
                best_surface = surface;
                best = (px, py, pz);
            }
        }
    }
    best
}

/// Rank of grid coordinate `(x, y, z)` in row-major order.
fn coord_to_rank(grid: (usize, usize, usize), x: usize, y: usize, z: usize) -> usize {
    (x * grid.1 + y) * grid.2 + z
}

/// Coordinates of `rank`.
fn rank_to_coord(grid: (usize, usize, usize), rank: usize) -> (usize, usize, usize) {
    let z = rank % grid.2;
    let y = (rank / grid.2) % grid.1;
    let x = rank / (grid.1 * grid.2);
    (x, y, z)
}

/// The six periodic neighbours of `rank` as `(minus, plus)` per axis.
pub fn neighbours(grid: (usize, usize, usize), rank: usize) -> [(usize, usize); 3] {
    let (x, y, z) = rank_to_coord(grid, rank);
    let (gx, gy, gz) = grid;
    [
        (
            coord_to_rank(grid, (x + gx - 1) % gx, y, z),
            coord_to_rank(grid, (x + 1) % gx, y, z),
        ),
        (
            coord_to_rank(grid, x, (y + gy - 1) % gy, z),
            coord_to_rank(grid, x, (y + 1) % gy, z),
        ),
        (
            coord_to_rank(grid, x, y, (z + gz - 1) % gz),
            coord_to_rank(grid, x, y, (z + 1) % gz),
        ),
    ]
}

/// Flops per grid point for one smoothing + residual pass (27-point
/// stencil arithmetic).
const FLOPS_PER_POINT: f64 = 30.0;

/// Build all ranks' programs for one MG run.
pub fn mg_programs(config: &MgConfig) -> Vec<Program> {
    let grid = process_grid_3d(config.ranks);
    let n = config.class.n();
    assert!(
        (n as usize).is_multiple_of(grid.0)
            && (n as usize).is_multiple_of(grid.1)
            && (n as usize).is_multiple_of(grid.2),
        "grid {n}^3 must divide the {grid:?} process grid"
    );
    let root = DetRng::new(config.seed);
    (0..config.ranks)
        .map(|rank| build_rank(config, grid, rank, root.fork(rank as u64)))
        .collect()
}

fn build_rank(
    config: &MgConfig,
    grid: (usize, usize, usize),
    rank: usize,
    mut rng: DetRng,
) -> Program {
    let mut b = ProgramBuilder::new(rank, config.ranks);
    let hier = MemHierarchy::pentium_m_1400();
    let n = config.class.n();
    let nbrs = neighbours(grid, rank);

    // Levels: n, n/2, ..., down to 4 (or the coarsest that still divides
    // the process grid; below that NPB agglomerates — we stop exchanging).
    let mut levels = Vec::new();
    let mut edge = n;
    while edge >= 4 {
        levels.push(edge);
        edge /= 2;
    }

    for _ in 0..config.class.iterations() {
        // Downward (restriction) and upward (prolongation) passes touch
        // every level; we emit each level twice per V-cycle.
        for pass in 0..2u32 {
            let level_list: Vec<u64> = if pass == 0 {
                levels.clone()
            } else {
                levels.iter().rev().cloned().collect()
            };
            for &edge in &level_list {
                let local = (
                    edge / grid.0 as u64,
                    edge / grid.1 as u64,
                    edge / grid.2 as u64,
                );
                if local.0 == 0 || local.1 == 0 || local.2 == 0 {
                    continue;
                }
                let points = local.0 * local.1 * local.2;

                // Smooth + residual at this level.
                b.phase_begin("smooth");
                let work = WorkUnit {
                    cpu_cycles: points as f64 * FLOPS_PER_POINT * CYCLES_PER_FLOP,
                    ..WorkUnit::ZERO
                }
                .add(&streaming_work(points * 8 * 2, 8, 0.0, &hier));
                b.compute(work.scale(rng.jitter(config.jitter)));
                b.phase_end("smooth");

                // Halo exchange: one face per direction per axis.
                b.phase_begin("halo");
                if config.dynamic_dvs {
                    b.set_speed(dvfs::AppSpeedRequest::Lowest);
                }
                let faces = [
                    local.1 * local.2 * 8,
                    local.0 * local.2 * 8,
                    local.0 * local.1 * 8,
                ];
                for (axis, &(minus, plus)) in nbrs.iter().enumerate() {
                    if minus == rank {
                        continue; // periodic wrap onto self: local copy
                    }
                    let bytes = faces[axis];
                    let tag_base: Tag = (axis as Tag) * 4 + pass;
                    // Exchange with both neighbours (send up / recv down,
                    // then the reverse), as NPB's comm3 does.
                    b.sendrecv(plus, bytes, tag_base, minus, bytes, tag_base);
                    b.sendrecv(minus, bytes, tag_base + 2, plus, bytes, tag_base + 2);
                }
                if config.dynamic_dvs {
                    b.set_speed(dvfs::AppSpeedRequest::Restore);
                }
                b.phase_end("halo");
            }
        }
        // Convergence check.
        b.allreduce(8);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Op;

    #[test]
    fn class_parameters_match_npb() {
        assert_eq!(MgClass::A.n(), 256);
        assert_eq!(MgClass::C.n(), 512);
        assert_eq!(MgClass::B.iterations(), 20);
    }

    #[test]
    fn process_grid_is_near_cubic() {
        assert_eq!(process_grid_3d(8), (2, 2, 2));
        assert_eq!(process_grid_3d(16), (4, 2, 2));
        assert_eq!(process_grid_3d(1), (1, 1, 1));
        let (px, py, pz) = process_grid_3d(12);
        assert_eq!(px * py * pz, 12);
        assert!(px >= py && py >= pz);
    }

    #[test]
    fn neighbours_are_symmetric() {
        let grid = process_grid_3d(8);
        for rank in 0..8 {
            for (axis, &(minus, plus)) in neighbours(grid, rank).iter().enumerate() {
                // My plus-neighbour's minus-neighbour is me.
                assert_eq!(neighbours(grid, plus)[axis].0, rank);
                assert_eq!(neighbours(grid, minus)[axis].1, rank);
            }
        }
    }

    #[test]
    fn builds_and_communicates() {
        let p = mg_programs(&MgConfig::paper_style(MgClass::Test, 8));
        assert_eq!(p.len(), 8);
        assert!(p[0]
            .ops()
            .iter()
            .any(|op| matches!(op, Op::SendRecv { .. })));
    }

    #[test]
    fn halo_pattern_is_closed() {
        // Every sendrecv must have its mirror on the peer: collect and
        // match the multiset across ranks.
        let programs = mg_programs(&MgConfig::paper_style(MgClass::Test, 8));
        let mut sends: Vec<(usize, usize, Tag, u64)> = Vec::new();
        let mut recvs: Vec<(usize, usize, Tag)> = Vec::new();
        for (rank, p) in programs.iter().enumerate() {
            for op in p.ops() {
                if let Op::SendRecv {
                    dst,
                    send_bytes,
                    send_tag,
                    src,
                    recv_tag,
                } = op
                {
                    sends.push((rank, *dst, *send_tag, *send_bytes));
                    recvs.push((*src, rank, *recv_tag));
                }
            }
        }
        let mut s: Vec<(usize, usize, Tag)> = sends.iter().map(|&(a, b, t, _)| (a, b, t)).collect();
        s.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(s, recvs);
    }

    #[test]
    fn communication_volume_shrinks_with_level() {
        // Face bytes at the finest level exceed the next level's by 4x.
        let programs = mg_programs(&MgConfig::paper_style(MgClass::Test, 8));
        let volumes: Vec<u64> = programs[0]
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::SendRecv { send_bytes, .. } => Some(*send_bytes),
                _ => None,
            })
            .collect();
        let max = *volumes.iter().max().unwrap();
        let min = *volumes.iter().min().unwrap();
        assert!(max >= 4 * min, "level scaling missing: max {max} min {min}");
    }

    #[test]
    fn single_rank_runs_without_exchange() {
        let p = mg_programs(&MgConfig::paper_style(MgClass::Test, 1));
        assert!(!p[0]
            .ops()
            .iter()
            .any(|op| matches!(op, Op::SendRecv { .. } | Op::Send { .. })));
    }

    #[test]
    fn dynamic_variant_instruments_halos() {
        let d = mg_programs(&MgConfig::paper_style(MgClass::Test, 8).with_dynamic_dvs());
        let speed_ops = d[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::SetSpeed(_)))
            .count();
        assert!(speed_ops > 0);
        assert_eq!(speed_ops % 2, 0, "balanced lower/restore pairs");
    }
}
