//! # workloads — the paper's applications as phase-accurate models
//!
//! Each workload builds per-rank [`mpi_sim::Program`]s whose compute,
//! memory, and communication volumes follow the real algorithms:
//!
//! * [`ft`] — the NAS Parallel Benchmarks FT kernel (3-D FFT with an
//!   all-to-all transpose each iteration), classes A/B/C, with the paper's
//!   dynamic-DVS instrumentation around the `fft()` function;
//! * [`transpose`] — the paper's 12K×12K parallel matrix transpose on a
//!   5×3 process grid: local transpose (memory-bound), block exchange to
//!   the transposed position, and gather to the root (the load-imbalance
//!   showcase), with dynamic-DVS instrumentation around steps 2–3;
//! * [`spec`] — single-node proxies for SPEC CFP2000 `swim`
//!   (memory-bound) and `mgrid` (cache-resident, CPU-bound), the paper's
//!   Figure 1 motivators;
//! * [`cg`] — NAS CG (beyond the paper): memory-bound sparse SpMV with
//!   allreduce/allgather communication;
//! * [`mg`] — NAS MG (beyond the paper): V-cycle multigrid with
//!   6-neighbour halo exchange on a 3-D process grid.
//!
//! Work volumes carry small deterministic per-rank jitter (seeded
//! [`sim_core::DetRng`]) so the cluster exhibits the mild natural
//! imbalance real machines show.

pub mod cg;
pub mod ft;
pub mod mg;
pub mod spec;
pub mod transpose;

pub use cg::{cg_programs, CgClass, CgConfig, CG_INNER_STEPS};
pub use ft::{ft_programs, FtClass, FtConfig};
pub use mg::{mg_programs, neighbours, process_grid_3d, MgClass, MgConfig};
pub use spec::{mgrid_program, swim_program, SpecConfig};
pub use transpose::{transpose_programs, TransposeConfig};

/// Cycles per floating-point operation assumed for the Pentium M on
/// optimized scientific kernels: SSE2 issues up to two double-precision
/// flops per cycle, degraded by dependency chains in FFT butterflies.
/// Fitted to the paper's FT delay crescendos (FT.B +6.8% at 600 MHz).
pub const CYCLES_PER_FLOP: f64 = 0.7;
