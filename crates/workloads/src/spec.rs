//! Single-node SPEC CFP2000 proxies: `swim` and `mgrid` (paper Figure 1).
//!
//! The paper motivates distributed DVS with two sequential codes whose
//! energy-delay crescendos bracket the behaviour space:
//!
//! * **swim** — shallow-water finite differences over arrays far larger
//!   than the caches: memory-bound, so delay barely grows as the clock
//!   drops and energy falls steeply;
//! * **mgrid** — multigrid relaxation with strong cache reuse:
//!   CPU-bound, so delay grows nearly linearly with `1/f` and slowing
//!   down saves little (or costs) energy.
//!
//! These proxies reproduce the operation mix, not the numerics: work
//! volumes follow the reference inputs' array sizes and flop counts.

use mem_model::{streaming_work, MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder};
use sim_core::DetRng;

use crate::CYCLES_PER_FLOP;

/// Configuration for the sequential proxies.
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Number of outer timesteps (scales runtime; the paper runs minutes).
    pub timesteps: u32,
    /// Work jitter amplitude.
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl SpecConfig {
    /// Enough timesteps for a minutes-long run at 1.4 GHz, as the paper's
    /// battery methodology requires (swim steps are much shorter than
    /// mgrid's, so the count is sized for swim).
    pub fn paper() -> Self {
        SpecConfig {
            timesteps: 200,
            jitter: 0.005,
            seed: 0x53_50, // "SP"
        }
    }

    /// Tiny run for tests.
    pub fn small() -> Self {
        SpecConfig {
            timesteps: 2,
            ..SpecConfig::paper()
        }
    }
}

/// swim's working set: the reference input is a 1335×1335 grid with ~14
/// double arrays — ~200 MB touched per timestep.
const SWIM_BYTES_PER_STEP: u64 = 200 * 1024 * 1024;

/// swim flops per byte streamed (stencil updates: ~0.2 flops/byte).
const SWIM_FLOPS_PER_BYTE: f64 = 0.2;

/// Build the swim proxy (single rank).
pub fn swim_program(config: &SpecConfig) -> Program {
    let mut b = ProgramBuilder::new(0, 1);
    let hier = MemHierarchy::pentium_m_1400();
    let mut rng = DetRng::new(config.seed);
    for _ in 0..config.timesteps {
        b.phase_begin("swim_step");
        let stream = streaming_work(
            SWIM_BYTES_PER_STEP,
            8,
            8.0 * SWIM_FLOPS_PER_BYTE * CYCLES_PER_FLOP,
            &hier,
        );
        b.compute(stream.scale(rng.jitter(config.jitter)));
        b.phase_end("swim_step");
    }
    b.build()
}

/// mgrid per-step work: relaxations over a hierarchy of grids; the finest
/// level dominates flops but most levels fit in the 1 MB L2 once blocked.
/// Modeled as a large cache-resident flop block plus a small streaming
/// component for the finest grid's boundary traffic.
const MGRID_FLOPS_PER_STEP: f64 = 2.0e9;

/// Fraction of mgrid's data traffic that escapes to DRAM.
const MGRID_DRAM_BYTES_PER_STEP: u64 = 12 * 1024 * 1024;

/// Build the mgrid proxy (single rank).
pub fn mgrid_program(config: &SpecConfig) -> Program {
    let mut b = ProgramBuilder::new(0, 1);
    let hier = MemHierarchy::pentium_m_1400();
    let mut rng = DetRng::new(config.seed ^ 0x4D47); // "MG"
    for _ in 0..config.timesteps {
        b.phase_begin("mgrid_step");
        let w = WorkUnit {
            cpu_cycles: MGRID_FLOPS_PER_STEP * CYCLES_PER_FLOP,
            ..WorkUnit::ZERO
        }
        .add(&streaming_work(MGRID_DRAM_BYTES_PER_STEP, 8, 0.0, &hier));
        b.compute(w.scale(rng.jitter(config.jitter)));
        b.phase_end("mgrid_step");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_work(p: &Program) -> WorkUnit {
        p.ops()
            .iter()
            .filter_map(|op| match op {
                mpi_sim::Op::Compute(w) => Some(*w),
                _ => None,
            })
            .fold(WorkUnit::ZERO, |acc, w| acc.add(&w))
    }

    #[test]
    fn swim_is_memory_bound() {
        let p = swim_program(&SpecConfig::small());
        let w = total_work(&p);
        let hier = MemHierarchy::pentium_m_1400();
        // Under a third of swim's time scales with frequency.
        assert!(
            w.scaled_fraction(&hier, 1.4e9) < 0.35,
            "{}",
            w.scaled_fraction(&hier, 1.4e9)
        );
    }

    #[test]
    fn mgrid_is_cpu_bound() {
        let p = mgrid_program(&SpecConfig::small());
        let w = total_work(&p);
        let hier = MemHierarchy::pentium_m_1400();
        assert!(
            w.scaled_fraction(&hier, 1.4e9) > 0.85,
            "{}",
            w.scaled_fraction(&hier, 1.4e9)
        );
    }

    #[test]
    fn paper_config_runs_minutes_at_full_speed() {
        let hier = MemHierarchy::pentium_m_1400();
        for p in [
            swim_program(&SpecConfig::paper()),
            mgrid_program(&SpecConfig::paper()),
        ] {
            let secs = total_work(&p).duration(&hier, 1.4e9).as_secs_f64();
            assert!(secs > 60.0, "run too short for ACPI methodology: {secs}s");
            assert!(secs < 900.0, "run unreasonably long: {secs}s");
        }
    }

    #[test]
    fn programs_are_single_rank_and_communication_free() {
        let p = swim_program(&SpecConfig::small());
        assert!(p
            .ops()
            .iter()
            .all(|op| !matches!(op, mpi_sim::Op::Send { .. } | mpi_sim::Op::Recv { .. })));
    }

    #[test]
    fn timesteps_scale_work_linearly() {
        let one = total_work(&swim_program(&SpecConfig {
            timesteps: 1,
            jitter: 0.0,
            seed: 1,
        }));
        let four = total_work(&swim_program(&SpecConfig {
            timesteps: 4,
            jitter: 0.0,
            seed: 1,
        }));
        assert!((four.dram_accesses / one.dram_accesses - 4.0).abs() < 1e-9);
    }
}
