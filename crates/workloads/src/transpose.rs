//! The paper's parallel matrix transpose (Section 4, Figure 5).
//!
//! A 12K×12K matrix of doubles on 15 processors in a 5×3 grid (each rank
//! holds a 2400×4000 submatrix, ~76.8 MB). Per iteration:
//!
//! 1. **local transpose** — memory-bound: stride-N writes miss on nearly
//!    every element;
//! 2. **exchange** — the submatrix is sent to the rank at the transposed
//!    grid position (a permutation; ranks on the permutation's fixed
//!    points — including the paper's node (0,0) — skip this step, the
//!    designed-in load imbalance);
//! 3. **gather** — every rank ships its block to the root for assembly,
//!    serializing on the root's downlink (the big slack source).
//!
//! The dynamic-DVS variant wraps steps 2 and 3 in PowerPack speed calls,
//! as the paper does.

use dvfs::AppSpeedRequest;
use mem_model::{MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder, Tag};
use sim_core::DetRng;

/// Transpose run configuration.
#[derive(Debug, Clone)]
pub struct TransposeConfig {
    /// Matrix dimension (N×N doubles).
    pub n: u64,
    /// Process grid (rows, cols); `rows * cols` ranks.
    pub grid: (usize, usize),
    /// Number of transpose iterations (the paper iterates for measurable
    /// battery drain).
    pub iterations: u32,
    /// Insert dynamic-DVS instrumentation around steps 2–3.
    pub dynamic_dvs: bool,
    /// Per-rank work jitter amplitude.
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl TransposeConfig {
    /// The paper's experiment: 12 000 × 12 000 doubles on a 5×3 grid.
    pub fn paper() -> Self {
        TransposeConfig {
            n: 12_000,
            grid: (5, 3),
            iterations: 2,
            dynamic_dvs: false,
            jitter: 0.01,
            seed: 0x545250, // "TRP"
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Self {
        TransposeConfig {
            n: 600,
            grid: (3, 2),
            iterations: 1,
            ..TransposeConfig::paper()
        }
    }

    /// Same run with dynamic-DVS instrumentation.
    pub fn with_dynamic_dvs(mut self) -> Self {
        self.dynamic_dvs = true;
        self
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Bytes of one rank's submatrix.
    pub fn block_bytes(&self) -> u64 {
        let (rows, cols) = self.grid;
        (self.n / rows as u64) * (self.n / cols as u64) * 8
    }

    /// The rank holding the transposed position of `rank`'s block: rank
    /// `(p, q)` of the rows×cols grid maps to index `q·rows + p` (its
    /// coordinates swapped, linearized in the transposed grid).
    pub fn partner(&self, rank: usize) -> usize {
        let (rows, cols) = self.grid;
        assert!(rank < rows * cols);
        let p = rank / cols;
        let q = rank % cols;
        q * rows + p
    }

    /// Inverse of [`TransposeConfig::partner`]: who sends *to* `rank`.
    pub fn partner_inverse(&self, rank: usize) -> usize {
        let (rows, cols) = self.grid;
        assert!(rank < rows * cols);
        let q = rank / rows;
        let p = rank % rows;
        p * cols + q
    }
}

/// Build all ranks' programs.
pub fn transpose_programs(config: &TransposeConfig) -> Vec<Program> {
    let (rows, cols) = config.grid;
    assert!(rows > 0 && cols > 0, "degenerate grid");
    assert!(
        config.n.is_multiple_of(rows as u64) && config.n.is_multiple_of(cols as u64),
        "matrix dimension must divide the grid"
    );
    let root = DetRng::new(config.seed);
    (0..config.ranks())
        .map(|rank| build_rank(config, rank, root.fork(rank as u64)))
        .collect()
}

const EXCHANGE_TAG: Tag = 1;

fn build_rank(config: &TransposeConfig, rank: usize, mut rng: DetRng) -> Program {
    let mut b = ProgramBuilder::new(rank, config.ranks());
    let hier = MemHierarchy::pentium_m_1400();
    let block = config.block_bytes();
    let elems = block / 8;

    // Local out-of-place transpose: read streams (1 miss per line), write
    // strides by a full row so essentially every element write misses.
    let local_transpose = WorkUnit {
        cpu_cycles: elems as f64 * 2.0, // index arithmetic per element
        l2_accesses: elems as f64,
        dram_accesses: elems as f64 / 8.0 + elems as f64 * 0.9,
    };

    let partner = config.partner(rank);
    let partner_inv = config.partner_inverse(rank);

    for _ in 0..config.iterations {
        b.phase_begin("local_transpose");
        b.compute(local_transpose.scale(rng.jitter(config.jitter)));
        b.phase_end("local_transpose");

        if config.dynamic_dvs {
            b.set_speed(AppSpeedRequest::Lowest);
        }
        b.phase_begin("exchange");
        // Fixed points of the permutation (e.g. rank 0 = grid (0,0)) keep
        // their block: the paper's load imbalance.
        if partner != rank {
            b.sendrecv(
                partner,
                block,
                EXCHANGE_TAG,
                partner_inv,
                block,
                EXCHANGE_TAG,
            );
        }
        b.phase_end("exchange");

        b.phase_begin("gather");
        b.gather(0, block);
        if rank == 0 {
            // Root assembles the received blocks (streaming copy).
            let assemble =
                mem_model::streaming_work(block * (config.ranks() as u64 - 1), 8, 1.0, &hier);
            b.compute(assemble.scale(rng.jitter(config.jitter)));
        }
        b.phase_end("gather");
        if config.dynamic_dvs {
            b.set_speed(AppSpeedRequest::Restore);
        }
        b.barrier();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Op;

    #[test]
    fn paper_config_matches_section_4() {
        let c = TransposeConfig::paper();
        assert_eq!(c.ranks(), 15);
        // "each processor is provided a submatrix of size 2400x4000".
        assert_eq!(c.block_bytes(), 2400 * 4000 * 8);
    }

    #[test]
    fn partner_is_a_permutation_with_expected_fixed_points() {
        let c = TransposeConfig::paper();
        let mut seen = [false; 15];
        for r in 0..15 {
            let p = c.partner(r);
            assert!(!seen[p], "partner not injective at {r}");
            seen[p] = true;
            assert_eq!(c.partner_inverse(p), r, "inverse mismatch at {r}");
        }
        // Grid (0,0) — rank 0 — keeps its block, as the paper notes.
        assert_eq!(c.partner(0), 0);
        // The 5x3 permutation has exactly 3 fixed points.
        let fixed = (0..15).filter(|&r| c.partner(r) == r).count();
        assert_eq!(fixed, 3);
    }

    #[test]
    fn fixed_point_ranks_skip_exchange() {
        let c = TransposeConfig::small(); // 3x2 grid
        let programs = transpose_programs(&c);
        // Exchange sendrecvs carry a full block; barrier sendrecvs are tiny.
        let block = c.block_bytes();
        let sends_exchange = |p: &Program| {
            p.ops()
                .iter()
                .any(|op| matches!(op, Op::SendRecv { send_bytes, .. } if *send_bytes == block))
        };
        for (r, program) in programs.iter().enumerate() {
            let has = sends_exchange(program);
            let is_fixed = c.partner(r) == r;
            assert_eq!(
                has, !is_fixed,
                "rank {r}: fixed={is_fixed}, exchanges={has}"
            );
        }
    }

    #[test]
    fn everyone_but_root_sends_gather_block() {
        let c = TransposeConfig::small();
        let programs = transpose_programs(&c);
        let block = c.block_bytes();
        for (r, program) in programs.iter().enumerate().skip(1) {
            assert!(
                program.bytes_sent() >= block,
                "rank {r} must ship its block to root"
            );
        }
    }

    #[test]
    fn dynamic_variant_wraps_steps_2_and_3() {
        let c = TransposeConfig::small().with_dynamic_dvs();
        let programs = transpose_programs(&c);
        let speed_ops = programs[1]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::SetSpeed(_)))
            .count();
        assert_eq!(speed_ops, 2 * c.iterations as usize);
        // The local transpose comes before the first SetSpeed: it runs at
        // the base operating point.
        let first_speed = programs[1]
            .ops()
            .iter()
            .position(|op| matches!(op, Op::SetSpeed(_)))
            .unwrap();
        let first_compute = programs[1]
            .ops()
            .iter()
            .position(|op| matches!(op, Op::Compute(_)))
            .unwrap();
        assert!(first_compute < first_speed);
    }

    #[test]
    #[should_panic(expected = "divide the grid")]
    fn indivisible_matrix_rejected() {
        let mut c = TransposeConfig::paper();
        c.n = 12_001;
        let _ = transpose_programs(&c);
    }

    #[test]
    fn local_transpose_is_memory_bound() {
        // The step-1 work unit must be dominated by DRAM stalls at
        // 1.4 GHz — that's what makes it a DVS opportunity (paper Fig. 6
        // reasoning applied to step 1).
        let c = TransposeConfig::paper();
        let elems = (c.block_bytes() / 8) as f64;
        let w = WorkUnit {
            cpu_cycles: elems * 2.0,
            l2_accesses: elems,
            dram_accesses: elems / 8.0 + elems * 0.9,
        };
        let hier = MemHierarchy::pentium_m_1400();
        assert!(w.scaled_fraction(&hier, 1.4e9) < 0.5);
    }
}
