//! # cluster-sim — the Beowulf cluster hardware model
//!
//! Assembles the per-component models into nodes and a cluster matching the
//! paper's testbed: 16 Dell Inspiron 8600 laptops (Pentium M 1.4 GHz with
//! Enhanced SpeedStep, 1 GB DDR, smart battery) on a 100 Mb/s switch.
//!
//! * [`NodeConfig`] — hardware description of one node.
//! * [`Node`] — live state: current operating point, CPU activity,
//!   per-component energy meter, ACPI battery, and the simulated
//!   `/proc/stat` busy/idle accounting the `cpuspeed` governor reads.
//! * [`Cluster`] — a vector of nodes plus the interconnect parameters,
//!   with aggregate energy reporting.

pub mod node;
pub mod proc_stat;

pub use node::{Node, NodeConfig};
pub use proc_stat::{ProcStat, ProcStatSnapshot};

use net_model::NetworkParams;
use power_model::EnergyReport;
use sim_core::SimTime;

/// A homogeneous cluster of nodes and its interconnect.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    network: NetworkParams,
}

impl Cluster {
    /// Build a cluster of `n` identical nodes.
    pub fn homogeneous(n: usize, config: NodeConfig, network: NetworkParams) -> Self {
        Cluster::from_configs(vec![config; n], network)
    }

    /// Build a cluster from per-node hardware descriptions (heterogeneous
    /// clusters: mixed ladders, base powers, memory systems — the
    /// straggler studies).
    pub fn from_configs(configs: Vec<NodeConfig>, network: NetworkParams) -> Self {
        assert!(!configs.is_empty(), "cluster needs at least one node");
        network.validate();
        let nodes = configs
            .into_iter()
            .enumerate()
            .map(|(id, config)| Node::new(id, config))
            .collect();
        Cluster { nodes, network }
    }

    /// The paper's testbed: `n` Inspiron-8600 nodes (up to 16) on the
    /// 100 Mb/s Catalyst switch.
    pub fn paper_testbed(n: usize) -> Self {
        assert!(
            (1..=16).contains(&n),
            "the paper's cluster has 16 nodes; asked for {n}"
        );
        Cluster::homogeneous(
            n,
            NodeConfig::inspiron_8600(),
            NetworkParams::catalyst_2950_100m(),
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false; construction requires at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable node access.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All nodes, mutably.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Interconnect parameters.
    pub fn network(&self) -> &NetworkParams {
        &self.network
    }

    /// Sum of all nodes' per-component energy through `now`.
    pub fn total_energy(&self, now: SimTime) -> EnergyReport {
        self.nodes
            .iter()
            .fold(EnergyReport::default(), |acc, n| acc.add(&n.energy(now)))
    }

    /// Instantaneous whole-cluster power draw, watts.
    pub fn total_power_now(&self) -> f64 {
        self.nodes.iter().map(|n| n.power_now()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::CpuActivity;

    #[test]
    fn paper_testbed_has_requested_size() {
        let c = Cluster::paper_testbed(16);
        assert_eq!(c.len(), 16);
        assert!((c.network().link_bw_bps - 100e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "16 nodes")]
    fn testbed_rejects_oversize() {
        let _ = Cluster::paper_testbed(17);
    }

    #[test]
    fn total_energy_sums_nodes() {
        let mut c = Cluster::paper_testbed(4);
        let t = SimTime::from_secs(10);
        for id in 0..4 {
            c.node_mut(id)
                .set_activity(SimTime::ZERO, CpuActivity::Active);
        }
        let total = c.total_energy(t);
        let single = c.node(0).energy(t);
        assert!((total.total_j() - 4.0 * single.total_j()).abs() < 1e-6);
    }

    #[test]
    fn cluster_power_scales_with_node_count() {
        let c2 = Cluster::paper_testbed(2);
        let c8 = Cluster::paper_testbed(8);
        assert!((c8.total_power_now() / c2.total_power_now() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_cluster_keeps_per_node_configs() {
        let mut hot = NodeConfig::inspiron_8600();
        hot.power.base_w = 30.0;
        let configs = vec![NodeConfig::inspiron_8600(), hot];
        let c = Cluster::from_configs(configs, net_model::NetworkParams::catalyst_2950_100m());
        assert_eq!(c.len(), 2);
        assert!(c.node(1).power_now() > c.node(0).power_now() + 20.0);
        assert_eq!(c.node(0).id(), 0);
        assert_eq!(c.node(1).id(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_config_list_rejected() {
        let _ = Cluster::from_configs(vec![], net_model::NetworkParams::catalyst_2950_100m());
    }
}
