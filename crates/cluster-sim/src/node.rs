//! One cluster node: CPU, memory system, NIC, battery, and accounting.

use mem_model::MemHierarchy;
use power_model::{
    CpuActivity, DvfsLadder, EnergyMeter, EnergyReport, MeasurementError, NodePowerParams, OpIndex,
    OperatingPoint, SmartBattery,
};
use sim_core::{SimDuration, SimTime};

use crate::proc_stat::{ProcStat, ProcStatSnapshot};

/// Hardware description of a node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Electrical model.
    pub power: NodePowerParams,
    /// Memory hierarchy.
    pub mem: MemHierarchy,
    /// DVFS operating points.
    pub ladder: DvfsLadder,
    /// Battery capacity, mWh.
    pub battery_mwh: f64,
}

impl NodeConfig {
    /// The paper's node: Dell Inspiron 8600, Pentium M 1.4 GHz.
    pub fn inspiron_8600() -> Self {
        NodeConfig {
            power: NodePowerParams::inspiron_8600(),
            mem: MemHierarchy::pentium_m_1400(),
            ladder: DvfsLadder::pentium_m_1400(),
            battery_mwh: 72_000.0,
        }
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig::inspiron_8600()
    }
}

/// Live state of one node.
#[derive(Debug)]
pub struct Node {
    id: usize,
    config: NodeConfig,
    meter: EnergyMeter,
    battery: SmartBattery,
    proc_stat: ProcStat,
    op_index: OpIndex,
    activity: CpuActivity,
    /// While `Some`, a DVFS transition is in flight and completes at the
    /// stored time; the CPU cannot execute until then.
    transition_until: Option<SimTime>,
    /// Cumulative residency per ladder index (Linux cpufreq's
    /// `time_in_state`), current state open since `residency_since`.
    residency: Vec<SimDuration>,
    residency_since: SimTime,
}

impl Node {
    /// A node starting halted at the *highest* operating point (how Linux
    /// boots with the performance governor the paper starts from).
    pub fn new(id: usize, config: NodeConfig) -> Self {
        config.power.validate();
        config.mem.validate();
        let top = config.ladder.highest();
        let meter = EnergyMeter::new(
            SimTime::ZERO,
            config.power.clone(),
            config.ladder.point(top),
        );
        let battery = SmartBattery::new(config.battery_mwh);
        let ladder_len = config.ladder.len();
        Node {
            id,
            meter,
            battery,
            proc_stat: ProcStat::new(SimTime::ZERO),
            op_index: top,
            activity: CpuActivity::Halt,
            transition_until: None,
            residency: vec![SimDuration::ZERO; ladder_len],
            residency_since: SimTime::ZERO,
            config,
        }
    }

    /// Node index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Hardware description.
    #[inline]
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Current operating-point index.
    pub fn op_index(&self) -> OpIndex {
        self.op_index
    }

    /// Current operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.config.ladder.point(self.op_index)
    }

    /// Core frequency right now, Hz.
    #[inline]
    pub fn freq_hz(&self) -> f64 {
        self.operating_point().freq_hz
    }

    /// Current CPU activity state.
    pub fn activity(&self) -> CpuActivity {
        self.activity
    }

    /// Change the CPU activity state at `now`.
    #[inline]
    pub fn set_activity(&mut self, now: SimTime, activity: CpuActivity) {
        self.activity = activity;
        self.meter.set_activity(now, activity);
        self.proc_stat.on_activity(now, activity);
    }

    /// Enter active compute with a blended dynamic-power factor (compute
    /// segments mixing execution with frequency-scaled L2 stalls).
    /// `/proc/stat` counts this busy, like any active state.
    #[inline]
    pub fn set_active_blended(&mut self, now: SimTime, factor: f64) {
        self.activity = CpuActivity::Active;
        self.meter.set_active_blended(now, factor);
        self.proc_stat.on_activity(now, CpuActivity::Active);
    }

    /// Begin a DVFS transition to `target` at `now`. Returns the latency
    /// the caller must stall execution for (zero when already there).
    /// The new frequency and the transition-energy impulse take effect at
    /// `now + latency`.
    pub fn begin_transition(&mut self, now: SimTime, target: OpIndex) -> SimDuration {
        assert!(target < self.config.ladder.len(), "op index out of range");
        if target == self.op_index {
            return SimDuration::ZERO;
        }
        let latency = self.config.ladder.transition_latency();
        self.transition_until = Some(now + latency);
        latency
    }

    /// Complete a transition begun earlier: switch the operating point at
    /// `now` (the meter charges the transition impulse).
    pub fn complete_transition(&mut self, now: SimTime, target: OpIndex) {
        assert!(target < self.config.ladder.len(), "op index out of range");
        self.account_residency(now);
        self.op_index = target;
        self.meter
            .set_operating_point(now, self.config.ladder.point(target));
        self.transition_until = None;
    }

    /// True while a frequency change is in flight.
    pub fn in_transition(&self) -> bool {
        self.transition_until.is_some()
    }

    /// Set the operating point instantly without latency or transition
    /// energy — boot-time setup before the measured run begins.
    pub fn force_operating_point(&mut self, now: SimTime, target: OpIndex) {
        assert!(target < self.config.ladder.len(), "op index out of range");
        self.account_residency(now);
        self.op_index = target;
        self.meter
            .jam_operating_point(now, self.config.ladder.point(target));
    }

    /// DRAM interface activity (for power accounting).
    #[inline]
    pub fn set_mem_active(&mut self, now: SimTime, active: bool) {
        self.meter.set_mem_active(now, active);
    }

    /// NIC activity (for power accounting).
    #[inline]
    pub fn set_nic_active(&mut self, now: SimTime, active: bool) {
        self.meter.set_nic_active(now, active);
    }

    /// Ground-truth energy by component through `now`.
    pub fn energy(&self, now: SimTime) -> EnergyReport {
        self.meter.report_at(now)
    }

    /// Instantaneous node power, watts.
    pub fn power_now(&self) -> f64 {
        self.meter.power_now()
    }

    /// Number of DVFS transitions performed.
    pub fn transitions(&self) -> u64 {
        self.meter.transitions()
    }

    /// Poll the ACPI battery at `now`: sync it to the meter's ground truth
    /// and return the quantized remaining capacity in mWh. A reading the
    /// pack rejects (the meter total going backwards would mean the
    /// battery recharged mid-run) is surfaced as a [`MeasurementError`]
    /// so the engine can degrade instead of aborting the run.
    pub fn poll_battery(&mut self, now: SimTime) -> Result<u64, MeasurementError> {
        self.battery.set_drawn(self.meter.total_at(now))?;
        Ok(self.battery.reading_mwh())
    }

    /// The battery's current quantized reading *without* syncing it to
    /// the meter — the last value a successful [`Node::poll_battery`]
    /// would have produced. Degraded-mode fallback for faulted polls.
    pub fn battery_reading(&self) -> u64 {
        self.battery.reading_mwh()
    }

    /// Read `/proc/stat` at `now`.
    pub fn proc_stat(&self, now: SimTime) -> ProcStatSnapshot {
        self.proc_stat.snapshot(now)
    }

    fn account_residency(&mut self, now: SimTime) {
        self.residency[self.op_index] += now.since(self.residency_since);
        self.residency_since = now;
    }

    /// Cumulative time spent at each ladder index through `now` — the
    /// cpufreq `time_in_state` counters, `(mhz, duration)` per point.
    pub fn time_in_state(&self, now: SimTime) -> Vec<(u32, SimDuration)> {
        self.residency
            .iter()
            .enumerate()
            .map(|(idx, &d)| {
                let mhz = self.config.ladder.point(idx).mhz();
                if idx == self.op_index {
                    (mhz, d + now.since(self.residency_since))
                } else {
                    (mhz, d)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc_stat::ProcStat;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    #[test]
    fn boots_halted_at_top_frequency() {
        let n = node();
        assert_eq!(n.op_index(), 4);
        assert!((n.freq_hz() - 1.4e9).abs() < 1.0);
        assert_eq!(n.activity(), CpuActivity::Halt);
        assert!(!n.in_transition());
    }

    #[test]
    fn transition_has_latency_and_charges_energy() {
        let mut n = node();
        let t0 = SimTime::from_secs(1);
        let lat = n.begin_transition(t0, 0);
        assert_eq!(lat, SimDuration::from_micros(10));
        assert!(n.in_transition());
        n.complete_transition(t0 + lat, 0);
        assert_eq!(n.op_index(), 0);
        assert!((n.freq_hz() - 0.6e9).abs() < 1.0);
        assert_eq!(n.transitions(), 1);
        assert!(!n.in_transition());
    }

    #[test]
    fn transition_to_same_point_is_free() {
        let mut n = node();
        let lat = n.begin_transition(SimTime::ZERO, 4);
        assert_eq!(lat, SimDuration::ZERO);
        assert!(!n.in_transition());
        assert_eq!(n.transitions(), 0);
    }

    #[test]
    fn battery_drains_with_metered_energy() {
        let mut n = node();
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        let full = n.poll_battery(SimTime::ZERO).unwrap();
        // ~37 W for 100 s ~ 3.7 kJ ~ 1027 mWh.
        let later = n.poll_battery(SimTime::from_secs(100)).unwrap();
        assert_eq!(n.battery_reading(), later);
        let measured_j = SmartBattery::energy_between(full, later).unwrap();
        let true_j = n.energy(SimTime::from_secs(100)).total_j();
        assert!(
            (measured_j - true_j).abs() < 2.0 * 3.6,
            "measured {measured_j} true {true_j}"
        );
    }

    #[test]
    fn proc_stat_sees_activity_changes() {
        let mut n = node();
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        let a = n.proc_stat(SimTime::ZERO);
        n.set_activity(SimTime::from_secs(3), CpuActivity::Halt);
        let b = n.proc_stat(SimTime::from_secs(4));
        let util = ProcStat::utilization(a, b);
        assert!((util - 0.75).abs() < 1e-9);
    }

    #[test]
    fn slow_point_draws_less_than_fast_under_load() {
        let mut n = node();
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        let p_fast = n.power_now();
        let lat = n.begin_transition(SimTime::from_secs(1), 0);
        n.complete_transition(SimTime::from_secs(1) + lat, 0);
        let p_slow = n.power_now();
        assert!(p_slow < p_fast);
        // Paper's core economics: the whole-node active-power span between
        // 1.4 GHz and 600 MHz is on the order of 2x.
        let ratio = p_fast / p_slow;
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_op_index_panics() {
        node().begin_transition(SimTime::ZERO, 9);
    }
}
