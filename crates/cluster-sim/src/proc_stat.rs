//! Simulated `/proc/stat` CPU accounting.
//!
//! The `cpuspeed` daemon's whole world-view is the busy/idle split it
//! derives from `/proc/stat`. We reproduce that: time in any activity state
//! except `Halt` accumulates as *busy* (busy-wait polling looks 100% busy to
//! Linux, which is exactly why the paper finds `cpuspeed` blind to
//! communication slack).

use power_model::CpuActivity;
use sim_core::{SimTime, TimeWeighted};

/// Running busy/idle accounting for one CPU.
#[derive(Debug)]
pub struct ProcStat {
    /// Indicator signal: 1.0 while busy, 0.0 while idle.
    busy: TimeWeighted,
}

/// A point-in-time reading, used to compute interval utilization the same
/// way the daemon diffs successive `/proc/stat` reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcStatSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Cumulative busy seconds since boot.
    pub busy_secs: f64,
}

impl ProcStat {
    /// Accounting starts at `start` with the CPU idle.
    pub fn new(start: SimTime) -> Self {
        ProcStat {
            busy: TimeWeighted::new(start, 0.0),
        }
    }

    /// The CPU changed activity state at `now`.
    pub fn on_activity(&mut self, now: SimTime, activity: CpuActivity) {
        self.busy
            .set(now, if activity.counts_as_busy() { 1.0 } else { 0.0 });
    }

    /// Read the counters, like opening `/proc/stat`.
    pub fn snapshot(&self, now: SimTime) -> ProcStatSnapshot {
        ProcStatSnapshot {
            at: now,
            busy_secs: self.busy.integral_at(now),
        }
    }

    /// Utilization in `[0, 1]` over the interval between two snapshots,
    /// `0` for an empty interval (matching the daemon's guard).
    pub fn utilization(prev: ProcStatSnapshot, curr: ProcStatSnapshot) -> f64 {
        let wall = curr.at.since(prev.at).as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        ((curr.busy_secs - prev.busy_secs) / wall).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    #[test]
    fn fully_busy_interval_reads_one() {
        let mut ps = ProcStat::new(SimTime::ZERO);
        ps.on_activity(SimTime::ZERO, CpuActivity::Active);
        let a = ps.snapshot(SimTime::ZERO);
        let b = ps.snapshot(SimTime::from_secs(2));
        assert!((ProcStat::utilization(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_wait_counts_as_busy() {
        // The key cpuspeed blindness: polling in MPI_Recv looks 100% busy.
        let mut ps = ProcStat::new(SimTime::ZERO);
        ps.on_activity(SimTime::ZERO, CpuActivity::BusyWait);
        let a = ps.snapshot(SimTime::ZERO);
        let b = ps.snapshot(SimTime::from_secs(5));
        assert_eq!(ProcStat::utilization(a, b), 1.0);
    }

    #[test]
    fn halt_counts_as_idle() {
        let mut ps = ProcStat::new(SimTime::ZERO);
        ps.on_activity(SimTime::ZERO, CpuActivity::Active);
        let a = ps.snapshot(SimTime::ZERO);
        ps.on_activity(SimTime::from_secs(1), CpuActivity::Halt);
        let b = ps.snapshot(SimTime::from_secs(4));
        assert!((ProcStat::utilization(a, b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mem_stall_is_busy_like_linux() {
        let mut ps = ProcStat::new(SimTime::ZERO);
        ps.on_activity(SimTime::ZERO, CpuActivity::MemStall);
        let a = ps.snapshot(SimTime::ZERO);
        let b = ps.snapshot(SimTime::from_secs(1));
        assert_eq!(ProcStat::utilization(a, b), 1.0);
    }

    #[test]
    fn empty_interval_reads_zero() {
        let ps = ProcStat::new(SimTime::ZERO);
        let s = ps.snapshot(SimTime::from_secs(1));
        assert_eq!(ProcStat::utilization(s, s), 0.0);
    }

    #[test]
    fn interval_utilization_is_windowed_not_cumulative() {
        let mut ps = ProcStat::new(SimTime::ZERO);
        ps.on_activity(SimTime::ZERO, CpuActivity::Active);
        // Busy 10 s, then idle.
        ps.on_activity(SimTime::from_secs(10), CpuActivity::Halt);
        let a = ps.snapshot(SimTime::from_secs(10));
        let b = ps.snapshot(SimTime::from_secs(10) + SimDuration::from_secs(10));
        assert_eq!(ProcStat::utilization(a, b), 0.0);
    }
}
