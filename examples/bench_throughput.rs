//! Engine throughput probe: simulated events per wall-clock second.
//!
//! Runs a fixed mix of the repository's dominant workloads (NAS FT class
//! C and class B on 8 ranks, under static and application-directed DVFS)
//! and reports how many discrete events the engine dispatched per second
//! of host time. `scripts/bench.sh` records this figure in its report;
//! it is also a convenient target for profilers, which need one
//! long-running process rather than many 100 ms ones:
//!
//! A second argument selects the instrumentation mode: `traced` runs the
//! same mix with full PowerScope instrumentation (metrics registry +
//! bounded trace), `causal` with the causal recorder (dependency log +
//! attribution solve); `scripts/bench.sh` runs all three and reports the
//! overhead ratios:
//!
//! ```sh
//! cargo run --release --example bench_throughput -- 200
//! cargo run --release --example bench_throughput -- 200 traced
//! cargo run --release --example bench_throughput -- 200 causal
//! ```

use std::time::Instant;

use pwrperf::{DvsStrategy, EngineConfig, Experiment, Workload};

fn main() {
    let loops: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let mode = std::env::args().nth(2).unwrap_or_default();
    let traced = mode == "traced";
    let causal = mode == "causal";
    let engine = EngineConfig {
        metrics: traced,
        trace_capacity: if traced { 1 << 16 } else { 0 },
        causal,
        ..EngineConfig::default()
    };
    let experiment = |workload: Workload, strategy| {
        Experiment::new(workload, strategy).with_engine(engine.clone())
    };

    // Warm caches so the timed section measures steady state.
    let _ = experiment(Workload::ft_c8(), DvsStrategy::StaticMhz(1400)).run();

    let mut events: u64 = 0;
    let t0 = Instant::now();
    for _ in 0..loops {
        for strategy in [
            DvsStrategy::StaticMhz(1400),
            DvsStrategy::DynamicBaseMhz(1400),
        ] {
            events += experiment(Workload::ft_c8(), strategy).run().events;
        }
        events += experiment(Workload::ft_b8(), DvsStrategy::StaticMhz(600))
            .run()
            .events;
    }
    let secs = t0.elapsed().as_secs_f64();

    println!("loops: {loops}");
    println!("mode: {}", if mode.is_empty() { "plain" } else { &mode });
    println!("events: {events}");
    println!("wall_secs: {secs:.4}");
    println!("events_per_sec: {:.0}", events as f64 / secs);
}
