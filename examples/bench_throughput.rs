//! Engine throughput probe: simulated events per wall-clock second.
//!
//! Runs a fixed mix of the repository's dominant workloads (NAS FT class
//! C and class B on 8 ranks, under static and application-directed DVFS)
//! and reports how many discrete events the engine dispatched per second
//! of host time. `scripts/bench.sh` records this figure in its report;
//! it is also a convenient target for profilers, which need one
//! long-running process rather than many 100 ms ones:
//!
//! A second argument `traced` runs the same mix with full PowerScope
//! instrumentation (metrics registry + bounded trace); `scripts/bench.sh`
//! runs both modes and reports the overhead ratio:
//!
//! ```sh
//! cargo run --release --example bench_throughput -- 200
//! cargo run --release --example bench_throughput -- 200 traced
//! ```

use std::time::Instant;

use pwrperf::{DvsStrategy, EngineConfig, Experiment, Workload};

fn main() {
    let loops: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let traced = std::env::args().nth(2).as_deref() == Some("traced");
    let engine = EngineConfig {
        metrics: traced,
        trace_capacity: if traced { 1 << 16 } else { 0 },
        ..EngineConfig::default()
    };
    let experiment = |workload: Workload, strategy| {
        Experiment::new(workload, strategy).with_engine(engine.clone())
    };

    // Warm caches so the timed section measures steady state.
    let _ = experiment(Workload::ft_c8(), DvsStrategy::StaticMhz(1400)).run();

    let mut events: u64 = 0;
    let t0 = Instant::now();
    for _ in 0..loops {
        for strategy in [
            DvsStrategy::StaticMhz(1400),
            DvsStrategy::DynamicBaseMhz(1400),
        ] {
            events += experiment(Workload::ft_c8(), strategy).run().events;
        }
        events += experiment(Workload::ft_b8(), DvsStrategy::StaticMhz(600))
            .run()
            .events;
    }
    let secs = t0.elapsed().as_secs_f64();

    println!("loops: {loops}");
    println!("traced: {traced}");
    println!("events: {events}");
    println!("wall_secs: {secs:.4}");
    println!("events_per_sec: {:.0}", events as f64 / secs);
}
