//! Calibration probe: print every paper experiment's normalized
//! energy-delay series next to nothing but the raw model — the tool used
//! to fit the power-model constants (see DESIGN.md and EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release --example calibration_probe
//! ```

use powerpack::{CommMicroConfig, MicroConfig};
use pwrperf::{cpuspeed_point, dynamic_crescendo, static_crescendo, Workload};

fn show(name: &str, c: &edp_metrics::Crescendo) {
    print!("{name:14}");
    for (mhz, e, d) in c.normalized() {
        print!("  {mhz}: E={e:.3} D={d:.3}");
    }
    println!();
}

fn main() {
    let t0 = std::time::Instant::now();
    let mem = static_crescendo(&Workload::MemoryMicro(MicroConfig { passes: 100 }));
    show("memory", &mem);
    let cpu = static_crescendo(&Workload::CpuMicro(MicroConfig { passes: 100 }));
    show("cpu(L2)", &cpu);
    let reg = static_crescendo(&Workload::RegisterMicro(MicroConfig { passes: 100 }));
    show("register", &reg);
    let c256 = static_crescendo(&Workload::Comm(CommMicroConfig {
        round_trips: 50,
        ..CommMicroConfig::paper_256k()
    }));
    show("comm256k", &c256);
    let c4k = static_crescendo(&Workload::Comm(CommMicroConfig {
        round_trips: 200,
        ..CommMicroConfig::paper_4k_strided()
    }));
    show("comm4k", &c4k);
    println!("micro took {:?}", t0.elapsed());

    let t1 = std::time::Instant::now();
    let ftb = static_crescendo(&Workload::ft_b8());
    show("FT.B stat", &ftb);
    let (e, d) = cpuspeed_point(&Workload::ft_b8());
    let r = ftb.points().iter().find(|p| p.mhz == 1400).unwrap();
    println!(
        "FT.B cpuspeed: E={:.3} D={:.3}",
        e / r.energy_j,
        d / r.delay_s
    );
    println!("FT.B took {:?}", t1.elapsed());

    let t2 = std::time::Instant::now();
    let ftc = static_crescendo(&Workload::ft_c8());
    show("FT.C stat", &ftc);
    let ftcd = dynamic_crescendo(&Workload::ft_c8());
    let rc = ftc.points().iter().find(|p| p.mhz == 1400).unwrap();
    print!("FT.C dyn    ");
    for p in ftcd.points() {
        print!(
            "  {}: E={:.3} D={:.3}",
            p.mhz,
            p.energy_j / rc.energy_j,
            p.delay_s / rc.delay_s
        );
    }
    println!();
    let (e, d) = cpuspeed_point(&Workload::ft_c8());
    println!(
        "FT.C cpuspeed: E={:.3} D={:.3}",
        e / rc.energy_j,
        d / rc.delay_s
    );
    println!("FT.C took {:?}", t2.elapsed());

    let t3 = std::time::Instant::now();
    let tr = static_crescendo(&Workload::transpose_paper());
    show("transp stat", &tr);
    let trd = dynamic_crescendo(&Workload::transpose_paper());
    let rt = tr.points().iter().find(|p| p.mhz == 1400).unwrap();
    print!("transp dyn  ");
    for p in trd.points() {
        print!(
            "  {}: E={:.3} D={:.3}",
            p.mhz,
            p.energy_j / rt.energy_j,
            p.delay_s / rt.delay_s
        );
    }
    println!();
    let (e, d) = cpuspeed_point(&Workload::transpose_paper());
    println!(
        "transp cpuspeed: E={:.3} D={:.3}",
        e / rt.energy_j,
        d / rt.delay_s
    );
    println!("transpose took {:?}", t3.elapsed());

    let sw = static_crescendo(&Workload::Swim);
    show("swim", &sw);
    let mg = static_crescendo(&Workload::Mgrid);
    show("mgrid", &mg);
}
