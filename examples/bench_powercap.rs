//! Power-cap acceptance benchmark: a load-imbalanced 4-rank FT run
//! (rank 0 slowed 5x) under an 80 W cluster budget, comparing the
//! redistribute and uniform cap policies against every uniform
//! `StaticMhz` point that fits the same budget under worst-case
//! accounting.
//!
//! Asserts the PR's acceptance criterion — redistribution achieves
//! strictly better weighted ED^2P than the best cap-feasible uniform
//! static — and emits the numbers as a JSON report on stdout;
//! `scripts/bench.sh cap` captures it into `BENCH_PR8.json`:
//!
//! ```sh
//! cargo run --release --example bench_powercap
//! ```

use cluster_sim::NodeConfig;
use edp_metrics::{weighted_ed2p, DELTA_HPC};
use pwrperf::{
    power_cap_default_sample, CapPolicy, DvsStrategy, EngineConfig, Experiment, FaultSpec,
    RunResult, Workload,
};

const RANKS: usize = 4;
const CAP_W: u32 = 80;
const FAULTS: &str = "slow:0:5.0";

fn run(strategy: DvsStrategy) -> RunResult {
    let engine = EngineConfig {
        sample_interval: Some(power_cap_default_sample()),
        faults: FaultSpec::parse(FAULTS).expect("valid fault spec"),
        ..EngineConfig::default()
    };
    Experiment::new(Workload::ft_test(RANKS), strategy)
        .with_engine(engine)
        .run()
}

fn peak_sampled_w(result: &RunResult) -> f64 {
    result
        .samples
        .iter()
        .map(|s| s.node_power_w.iter().sum::<f64>())
        .fold(0.0, f64::max)
}

fn main() {
    let base = run(DvsStrategy::StaticMhz(1400));
    let (e0, d0) = (base.total_energy_j(), base.duration_secs());
    let uncapped_peak = peak_sampled_w(&base);
    assert!(uncapped_peak > CAP_W as f64, "the cap must bind");

    let wed2p =
        |r: &RunResult| weighted_ed2p(r.total_energy_j() / e0, r.duration_secs() / d0, DELTA_HPC);

    let config = NodeConfig::inspiron_8600();
    let mut static_rows = Vec::new();
    let mut best_uniform_static = f64::INFINITY;
    for point in config.ladder.points() {
        let worst_case = RANKS as f64 * config.power.max_node_power_w(*point);
        if worst_case > CAP_W as f64 {
            continue;
        }
        let r = run(DvsStrategy::StaticMhz(point.mhz()));
        let w = wed2p(&r);
        best_uniform_static = best_uniform_static.min(w);
        static_rows.push(format!(
            "    {{ \"mhz\": {}, \"worst_case_w\": {worst_case:.1}, \"wed2p\": {w:.4} }}",
            point.mhz()
        ));
    }
    assert!(!static_rows.is_empty(), "no ladder point fits the budget");

    let uniform = run(DvsStrategy::PowerCap {
        watts: CAP_W,
        policy: CapPolicy::Uniform,
    });
    let redist = run(DvsStrategy::PowerCap {
        watts: CAP_W,
        policy: CapPolicy::Redistribute,
    });
    let (w_uniform, w_redist) = (wed2p(&uniform), wed2p(&redist));
    let (p_uniform, p_redist) = (peak_sampled_w(&uniform), peak_sampled_w(&redist));
    assert!(p_uniform <= CAP_W as f64 + 1e-9, "uniform breached the cap");
    assert!(
        p_redist <= CAP_W as f64 + 1e-9,
        "redistribute breached the cap"
    );
    assert!(
        w_redist < best_uniform_static,
        "redistribute {w_redist:.4} must beat best uniform static {best_uniform_static:.4}"
    );

    println!("{{");
    println!("  \"workload\": \"ft-test4\",");
    println!("  \"faults\": \"{FAULTS}\",");
    println!("  \"cap_watts\": {CAP_W},");
    println!("  \"uncapped_peak_w\": {uncapped_peak:.1},");
    println!("  \"delta\": {DELTA_HPC},");
    println!("  \"feasible_uniform_statics\": [");
    println!("{}", static_rows.join(",\n"));
    println!("  ],");
    println!("  \"best_uniform_static_wed2p\": {best_uniform_static:.4},");
    println!(
        "  \"uniform_policy\": {{ \"wed2p\": {w_uniform:.4}, \"peak_sampled_w\": {p_uniform:.1} }},"
    );
    println!(
        "  \"redistribute_policy\": {{ \"wed2p\": {w_redist:.4}, \"peak_sampled_w\": {p_redist:.1} }},"
    );
    println!("  \"cap_held\": true,");
    println!("  \"redistribute_beats_best_uniform\": true");
    println!("}}");
}
