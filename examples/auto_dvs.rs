//! Automatic slack-directed DVS: profile a pilot run, let the tuner find
//! the slack-heavy phases, and compare against hand instrumentation —
//! the Adagio/GEOPM idea, twenty years early on the paper's own platform.
//!
//! ```sh
//! cargo run --release --example auto_dvs
//! ```

use pwrperf::{AutoTuner, DvsStrategy, Experiment, Workload};

fn main() {
    let workload = Workload::mg_b8();
    println!("workload: {}\n", workload.label());

    let reference = Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1400)).run();
    println!(
        "static 1400 MHz : {:.1} s, {:.0} J",
        reference.duration_secs(),
        reference.total_energy_j()
    );

    let outcome = AutoTuner::default().tune(&workload);
    println!(
        "pilot profile selected slack-heavy phases: {:?}",
        outcome.selected_phases
    );
    println!(
        "auto-tuned      : {:.1} s, {:.0} J ({:+.1}% time, {:+.1}% energy)",
        outcome.tuned.duration_secs(),
        outcome.tuned.total_energy_j(),
        (outcome.tuned.duration_secs() / reference.duration_secs() - 1.0) * 100.0,
        (outcome.tuned.total_energy_j() / reference.total_energy_j() - 1.0) * 100.0,
    );

    let hand = Experiment::new(workload, DvsStrategy::DynamicBaseMhz(1400)).run();
    println!(
        "hand-instrumented: {:.1} s, {:.0} J (the paper's approach)",
        hand.duration_secs(),
        hand.total_energy_j()
    );
}
