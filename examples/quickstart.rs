//! Quickstart: measure one workload under the paper's three DVS
//! strategies and pick a "best" operating point.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edp_metrics::{
    best_operating_point, efficiency_gain, DELTA_ENERGY, DELTA_HPC, DELTA_PERFORMANCE,
};
use pwrperf::{cpuspeed_point, static_crescendo, DvsStrategy, Experiment, Workload};

fn main() {
    // The paper's Figure 3 workload: NAS FT class B on 8 simulated
    // Pentium-M nodes.
    let workload = Workload::ft_b8();
    println!("workload: {}\n", workload.label());

    // 1. One run, one strategy.
    let run = Experiment::new(workload.clone(), DvsStrategy::StaticMhz(800)).run();
    println!(
        "static 800 MHz: {:.1} s, {:.0} J total ({:.0} J CPU dynamic, {:.0} J base)",
        run.duration_secs(),
        run.total_energy_j(),
        run.total.cpu_dynamic_j,
        run.total.base_j,
    );

    // 2. Sweep the whole SpeedStep ladder under static control.
    let crescendo = static_crescendo(&workload);
    println!("\nstatic crescendo (normalized to 1400 MHz):");
    for (mhz, e, d) in crescendo.normalized() {
        println!("  {mhz:>5} MHz: energy {e:.3}, delay {d:.3}");
    }

    // 3. The cpuspeed daemon for comparison (the paper's negative result:
    //    utilization-driven control can't see MPI slack).
    let (e_cs, d_cs) = cpuspeed_point(&workload);
    let reference = crescendo.reference();
    println!(
        "\ncpuspeed daemon: energy {:.3}, delay {:.3} (≈ static 1400 MHz)",
        e_cs / reference.energy_j,
        d_cs / reference.delay_s
    );

    // 4. Pick "best" operating points under the paper's weighted ED²P.
    println!("\nbest operating points (weighted ED²P):");
    for (name, delta) in [
        ("HPC (d=0.2)", DELTA_HPC),
        ("energy (d=-1)", DELTA_ENERGY),
        ("performance (d=1)", DELTA_PERFORMANCE),
    ] {
        let best = best_operating_point(&crescendo, delta).unwrap();
        println!("  {name:>16}: {best} MHz");
    }
    println!(
        "\nHPC point is {:.1}% more efficient than always running at 1.4 GHz",
        efficiency_gain(&crescendo, DELTA_HPC) * 100.0
    );
}
