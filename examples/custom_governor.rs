//! Plugging a custom governor into the simulator.
//!
//! The paper's lineage (Adagio, GEOPM…) built smarter runtime governors on
//! the same substrate. This example implements a simple *history*
//! predictor — step down when the last two intervals were under-utilized,
//! step up immediately otherwise — and races it against the stock
//! `cpuspeed` daemon on NAS FT with a blocking-wait transport, where
//! utilization actually carries signal.
//!
//! ```sh
//! cargo run --release --example custom_governor
//! ```

use cluster_sim::{Cluster, Node, ProcStat, ProcStatSnapshot};
use dvfs::{CpuspeedGovernor, Governor, StaticGovernor};
use mpi_sim::{Engine, EngineConfig, WaitPolicy};
use power_model::OpIndex;
use pwrperf::Workload;
use sim_core::{SimDuration, SimTime};

/// Step down only after two consecutive low-utilization windows; jump to
/// maximum on one busy window. More stable than cpuspeed's single-window
/// rule for bursty MPI phases.
struct HistoryGovernor {
    prev: Option<ProcStatSnapshot>,
    low_streak: u32,
}

impl HistoryGovernor {
    fn new() -> Self {
        HistoryGovernor {
            prev: None,
            low_streak: 0,
        }
    }
}

impl Governor for HistoryGovernor {
    fn name(&self) -> &'static str {
        "history"
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        self.prev = Some(node.proc_stat(SimTime::ZERO));
        None
    }

    fn poll_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_millis(500))
    }

    fn on_tick(&mut self, now: SimTime, node: &Node) -> Option<OpIndex> {
        let curr = node.proc_stat(now);
        let decision = self.prev.and_then(|prev| {
            let util = ProcStat::utilization(prev, curr);
            let ladder = &node.config().ladder;
            if util > 0.85 {
                self.low_streak = 0;
                (node.op_index() != ladder.highest()).then(|| ladder.highest())
            } else if util < 0.60 {
                self.low_streak += 1;
                (self.low_streak >= 2 && node.op_index() != ladder.lowest())
                    .then(|| ladder.step_down(node.op_index()))
            } else {
                self.low_streak = 0;
                None
            }
        });
        self.prev = Some(curr);
        decision
    }
}

fn run_with(workload: &Workload, make: impl Fn() -> Box<dyn Governor>) -> (f64, f64) {
    let cluster = Cluster::paper_testbed(workload.ranks());
    let governors = (0..workload.ranks()).map(|_| make()).collect();
    let engine = EngineConfig {
        // Interrupt-driven transport: waits are visible idle time.
        wait_policy: WaitPolicy::PollThenBlock(SimDuration::from_millis(50)),
        ..EngineConfig::default()
    };
    let result = Engine::new(cluster, workload.programs(false), governors, engine).run();
    (result.total_energy_j(), result.duration_secs())
}

fn main() {
    let workload = Workload::ft_b8();
    println!("workload: {} (blocking-wait transport)\n", workload.label());

    let (e_ref, d_ref) = run_with(&workload, || Box::new(StaticGovernor::performance()));
    println!(
        "{:>12}: {d_ref:.1} s, {e_ref:.0} J (reference)",
        "performance"
    );
    for (name, make) in [
        (
            "cpuspeed",
            Box::new(|| Box::new(CpuspeedGovernor::stock()) as Box<dyn Governor>)
                as Box<dyn Fn() -> Box<dyn Governor>>,
        ),
        (
            "history",
            Box::new(|| Box::new(HistoryGovernor::new()) as Box<dyn Governor>),
        ),
    ] {
        let (e, d) = run_with(&workload, &*make);
        println!(
            "{name:>12}: {d:.1} s, {e:.0} J ({:+.1}% time, {:+.1}% energy)",
            (d / d_ref - 1.0) * 100.0,
            (e / e_ref - 1.0) * 100.0
        );
    }
    println!("\nWith visible idle time, utilization governors do save energy —");
    println!("the paper's cpuspeed verdict is about busy-wait transports.");
}
