//! The paper's measurement methodology, quantified.
//!
//! PowerPack measures energy two ways: ACPI smart-battery polling (15–20 s
//! refresh, 1 mWh quantization) and a Baytech power strip (one reading a
//! minute). This example runs FT.B with 1 s engine sampling, replays both
//! instruments over the samples, and compares them with the simulation's
//! ground-truth joules — showing why the paper ran long problems and
//! repeated every experiment.
//!
//! ```sh
//! cargo run --release --example measurement_error
//! ```

use powerpack::{acpi_measured_energy, baytech_energy, node_average_power, ExperimentProtocol};
use pwrperf::{DvsStrategy, EngineConfig, Experiment, Workload};
use sim_core::SimDuration;

fn main() {
    let workload = Workload::ft_b8();
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_secs(1)),
        ..EngineConfig::default()
    };
    let run = Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1000))
        .with_engine(engine.clone())
        .run();

    println!("workload: {} at static 1000 MHz", workload.label());
    println!(
        "duration: {:.1} s, samples: {}\n",
        run.duration_secs(),
        run.samples.len()
    );

    let truth: f64 = run.per_node.iter().map(|r| r.total_j()).sum();
    let acpi: f64 = acpi_measured_energy(&run.samples, SimDuration::from_secs(18))
        .iter()
        .sum();
    let strip: f64 = baytech_energy(&run.samples).iter().sum();

    println!("cluster energy, three ways:");
    println!("  ground truth      : {truth:>10.0} J");
    println!(
        "  ACPI batteries    : {acpi:>10.0} J ({:+.2}%)",
        (acpi / truth - 1.0) * 100.0
    );
    println!(
        "  Baytech strip     : {strip:>10.0} J ({:+.2}%)",
        (strip / truth - 1.0) * 100.0
    );

    let avg = node_average_power(&run.samples);
    println!(
        "\nper-node average power: min {:.1} W, max {:.1} W over {} nodes",
        avg.iter().cloned().fold(f64::INFINITY, f64::min),
        avg.iter().cloned().fold(0.0, f64::max),
        avg.len()
    );

    // The paper's protocol: repeat >= 3 times, flag outliers.
    let outcome = ExperimentProtocol::default().execute(|_| {
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1000))
            .with_engine(engine.clone())
            .run()
    });
    println!(
        "\nprotocol over {} repetitions: mean {:.0} J, {:.1} s, outliers: {:?}",
        outcome.energies_j.len(),
        outcome.mean_energy_j,
        outcome.mean_duration_s,
        outcome.outliers
    );
}
