//! Load imbalance as a DVS opportunity: the paper's 12K×12K parallel
//! matrix transpose on a 5×3 process grid.
//!
//! Prints each rank's time breakdown (compute / memory stall / wait) to
//! show where slack lives, then compares static and dynamic control.
//!
//! ```sh
//! cargo run --release --example transpose_load_imbalance
//! ```

use pwrperf::{DvsStrategy, Experiment, Workload};

fn main() {
    let workload = Workload::transpose_paper();
    println!("workload: {}\n", workload.label());

    let run = Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1400)).run();
    println!(
        "static 1400 MHz: {:.1} s, {:.0} J cluster-wide\n",
        run.duration_secs(),
        run.total_energy_j()
    );

    println!("per-rank time breakdown (the paper's designed-in imbalance):");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>14}",
        "rank", "compute", "mem stall", "wait", "compute frac"
    );
    for (rank, b) in run.breakdown.iter().enumerate() {
        println!(
            "{:>5} {:>9.1}s {:>9.1}s {:>9.1}s {:>13.1}%",
            rank,
            b.compute.as_secs_f64(),
            b.mem_stall.as_secs_f64(),
            (b.wait_busy + b.wait_blocked).as_secs_f64(),
            b.compute_fraction() * 100.0
        );
    }
    println!("\nrank 0 (the gather root) computes; everyone else mostly waits —");
    println!("exactly the slack the paper's dynamic strategy converts to energy.\n");

    for strategy in [
        DvsStrategy::StaticMhz(1400),
        DvsStrategy::StaticMhz(600),
        DvsStrategy::DynamicBaseMhz(1400),
        DvsStrategy::Cpuspeed,
    ] {
        let r = Experiment::new(workload.clone(), strategy).run();
        println!(
            "{:>14}: {:.1} s, {:.0} J ({:+.1}% time, {:+.1}% energy vs 1400 MHz)",
            strategy.label(),
            r.duration_secs(),
            r.total_energy_j(),
            (r.duration_secs() / run.duration_secs() - 1.0) * 100.0,
            (r.total_energy_j() / run.total_energy_j() - 1.0) * 100.0,
        );
    }
}
