//! Scale benchmark: one class-C FT iteration at large rank counts on an
//! oversubscribed fat-tree, reporting engine throughput per shard count
//! and verifying the sharded planner's bit-identity guarantee at scale.
//!
//! For each rank count the same run executes with 1, 2, and 8 shards;
//! the three `RunResult`s must compare equal (durations, energies,
//! breakdowns — everything), which is the scaled-up version of the
//! assertion `tests/determinism.rs` makes on the small workloads.
//! Output is a JSON report on stdout; `scripts/bench.sh scale` captures
//! it into `BENCH_PR6.json`:
//!
//! ```sh
//! cargo run --release --example bench_scale            # up to 4096 ranks
//! cargo run --release --example bench_scale -- 1024    # cap the sweep
//! ```

use std::time::Instant;

use pwrperf::{DvsStrategy, EngineConfig, Experiment, RunResult, Topology, Workload};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn run_once(ranks: usize, shards: usize) -> (RunResult, f64) {
    let engine = EngineConfig {
        topology: Topology::FatTree {
            radix: 16,
            oversub: 2.0,
        },
        shards,
        ..EngineConfig::default()
    };
    let t0 = Instant::now();
    let result = Experiment::new(Workload::ft_scale(ranks), DvsStrategy::StaticMhz(1400))
        .with_engine(engine)
        .run();
    (result, t0.elapsed().as_secs_f64())
}

fn main() {
    let max_ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    println!("{{");
    println!("  \"topology\": \"fat-tree:radix=16,oversub=2\",");
    println!("  \"scale\": [");
    let rank_counts: Vec<usize> = [256, 1024, 4096]
        .into_iter()
        .filter(|&r| r <= max_ranks)
        .collect();
    for (i, &ranks) in rank_counts.iter().enumerate() {
        let mut baseline: Option<RunResult> = None;
        let mut rows = Vec::new();
        for shards in SHARD_COUNTS {
            let (result, wall) = run_once(ranks, shards);
            rows.push(format!(
                "        {{ \"shards\": {shards}, \"events\": {}, \"wall_secs\": {wall:.3}, \
                 \"events_per_sec\": {} }}",
                result.events,
                (result.events as f64 / wall) as u64
            ));
            match &baseline {
                None => baseline = Some(result),
                Some(b) => assert_eq!(
                    *b, result,
                    "{ranks} ranks: {shards} shards diverged from sequential"
                ),
            }
        }
        let b = baseline.expect("at least one shard count ran");
        println!("    {{");
        println!("      \"ranks\": {ranks},");
        println!("      \"simulated_secs\": {:.4},", b.duration_secs());
        println!("      \"bit_identical_across_shards\": true,");
        println!("      \"runs\": [");
        println!("{}", rows.join(",\n"));
        println!("      ]");
        println!("    }}{}", if i + 1 < rank_counts.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
