//! Sweep-service benchmark: a real `pwrperfd` on a loopback TCP socket,
//! a cold drain of a `BENCH_SERVICE_JOBS`-cell grid (default 10 000,
//! built on the fault-seed axis so every cell is a distinct engine
//! run), then the warm paths the daemon exists for: a re-submission of
//! the same grid answered entirely from the store (zero engine
//! executions, bit-identical results) and store-only aggregation
//! queries.
//!
//! Asserts the PR's acceptance criterion — warm-store answers execute
//! nothing and replay the cold bytes — and emits the numbers as a JSON
//! report on stdout; `scripts/bench.sh service` captures it into
//! `BENCH_PR10.json`:
//!
//! ```sh
//! cargo run --release --example bench_service
//! ```

use std::time::Instant;

use pwrperf::{Client, Server, ServerConfig, SweepSpec, SweepStore};

const STRATEGIES: [&str; 5] = [
    "static-1400",
    "static-1200",
    "static-1000",
    "static-800",
    "static-600",
];

fn main() {
    let target_jobs: usize = std::env::var("BENCH_SERVICE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let seeds = target_jobs.div_ceil(STRATEGIES.len()).max(1);
    let spec = SweepSpec {
        workloads: vec!["cpu-micro".to_string()],
        strategies: STRATEGIES.iter().map(|s| s.to_string()).collect(),
        deltas: vec![0.0, 0.2],
        fault_specs: (0..seeds).map(|i| format!("seed:{i}")).collect(),
        ..SweepSpec::default()
    };
    let jobs = seeds * STRATEGIES.len();

    let dir = std::env::temp_dir().join(format!("pwrperf-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SweepStore::open(&dir).expect("open store");
    let server =
        Server::bind_tcp(store, ServerConfig::default(), "127.0.0.1:0").expect("bind daemon");
    let addr = server.tcp_addr().expect("tcp addr").to_string();
    let daemon = std::thread::spawn(move || server.serve().expect("serve"));
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // Cold: every cell is a miss and executes exactly once.
    let t0 = Instant::now();
    let cold = client.submit_sweep(&spec).expect("cold sweep");
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(cold.report.jobs as usize, jobs);
    assert_eq!(cold.report.engine_runs as usize, jobs, "cold = all misses");

    // Warm: the same grid again, answered entirely from the store.
    let t0 = Instant::now();
    let warm = client.submit_sweep(&spec).expect("warm sweep");
    let warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(warm.report.engine_runs, 0, "warm store executes nothing");
    assert_eq!(warm.results, cold.results, "warm replay is bit-identical");

    // Full-grid aggregation: the whole wED2P table from the store alone.
    let t0 = Instant::now();
    let full = client.query(&spec).expect("full query");
    let full_query_s = t0.elapsed().as_secs_f64();
    assert_eq!(full.rows as usize, jobs);
    assert_eq!(full.missing, 0);

    // Small-grid query rate: the interactive case — one figure's worth
    // of cells out of a warm store, over and over.
    let small = SweepSpec {
        fault_specs: (0..seeds.min(4)).map(|i| format!("seed:{i}")).collect(),
        ..spec.clone()
    };
    let rounds = 100u32;
    let t0 = Instant::now();
    for _ in 0..rounds {
        let reply = client.query(&small).expect("small query");
        assert_eq!(reply.missing, 0);
    }
    let small_query_s = t0.elapsed().as_secs_f64();

    let status = client.status().expect("status");
    let engine_runs = status.counter("service.engine_runs").unwrap_or(0);
    assert_eq!(engine_runs as usize, jobs, "queries never execute");
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon join");
    let _ = std::fs::remove_dir_all(&dir);

    println!("{{");
    println!("  \"workload\": \"cpu-micro\",");
    println!("  \"jobs\": {jobs},");
    println!("  \"strategies\": {},", STRATEGIES.len());
    println!("  \"fault_seeds\": {seeds},");
    println!("  \"cold_sweep\": {{");
    println!("    \"wall_s\": {cold_s:.3},");
    println!("    \"jobs_per_sec\": {:.1}", jobs as f64 / cold_s);
    println!("  }},");
    println!("  \"warm_sweep\": {{");
    println!("    \"wall_s\": {warm_s:.3},");
    println!("    \"jobs_per_sec\": {:.1},", jobs as f64 / warm_s);
    println!("    \"engine_runs\": 0,");
    println!("    \"bit_identical\": true,");
    println!("    \"speedup_vs_cold\": {:.2}", cold_s / warm_s);
    println!("  }},");
    println!("  \"full_grid_query\": {{");
    println!("    \"rows\": {jobs},");
    println!("    \"wall_s\": {full_query_s:.3}");
    println!("  }},");
    println!("  \"small_grid_query\": {{");
    println!(
        "    \"rows_per_query\": {},",
        seeds.min(4) * STRATEGIES.len()
    );
    println!("    \"rounds\": {rounds},");
    println!(
        "    \"queries_per_sec\": {:.1}",
        f64::from(rounds) / small_query_s
    );
    println!("  }},");
    println!("  \"warm_store_executes_nothing\": true");
    println!("}}");
}
