//! Integration tests for the beyond-the-paper extensions: the CG
//! workload, the extra governors, hardware ablations, and phase-level
//! profiling.

use cluster_sim::NodeConfig;
use net_model::NetworkParams;
use powerpack::{phase_time_fraction, profile_phases};
use pwrperf::{
    crescendo_of, static_crescendo, DvsStrategy, EngineConfig, Experiment, WaitPolicy, Workload,
};
use sim_core::SimDuration;
use workloads::CgClass;

#[test]
fn cg_is_a_dvs_friendly_workload() {
    // Memory- and allgather-bound: deep energy savings, small slowdown.
    let c = static_crescendo(&Workload::Cg {
        class: CgClass::A,
        ranks: 8,
    });
    let (e600, d600) = c.normalized_for(600).unwrap();
    assert!(e600 < 0.75, "CG E600 = {e600}");
    assert!(d600 < 1.10, "CG D600 = {d600}");
}

#[test]
fn cg_dynamic_control_saves_without_hurting_delay() {
    let w = Workload::Cg {
        class: CgClass::A,
        ranks: 8,
    };
    let stat_1400 = Experiment::new(w.clone(), DvsStrategy::StaticMhz(1400)).run();
    let dynamic = Experiment::new(w, DvsStrategy::DynamicBaseMhz(1400)).run();
    let e = dynamic.total_energy_j() / stat_1400.total_energy_j();
    let d = dynamic.duration_secs() / stat_1400.duration_secs();
    assert!(e < 1.0, "dynamic must save energy: {e}");
    assert!(d < 1.05, "dynamic exchange-only slowdown small: {d}");
    assert!(dynamic.transitions.iter().all(|&t| t > 0));
}

#[test]
fn governor_ordering_under_blocking_waits() {
    // With visible idle, every adaptive governor saves energy relative to
    // the performance baseline and costs some delay.
    let engine = EngineConfig {
        wait_policy: WaitPolicy::PollThenBlock(SimDuration::from_millis(50)),
        ..EngineConfig::default()
    };
    let baseline = Experiment::new(Workload::ft_b8(), DvsStrategy::StaticMhz(1400))
        .with_engine(engine.clone())
        .run();
    for strategy in [
        DvsStrategy::Cpuspeed,
        DvsStrategy::OnDemand,
        DvsStrategy::Conservative,
    ] {
        let r = Experiment::new(Workload::ft_b8(), strategy)
            .with_engine(engine.clone())
            .run();
        let e = r.total_energy_j() / baseline.total_energy_j();
        let d = r.duration_secs() / baseline.duration_secs();
        assert!(e < 0.97, "{} saved nothing: {e}", strategy.label());
        assert!(d < 1.25, "{} delay blew up: {d}", strategy.label());
        assert!(
            r.transitions.iter().sum::<u64>() > 0,
            "{} never transitioned",
            strategy.label()
        );
    }
}

#[test]
fn base_power_dilutes_savings_monotonically() {
    let mut last_e600 = 0.0;
    for base_w in [4.0, 16.0, 64.0] {
        let mut node = NodeConfig::inspiron_8600();
        node.power.base_w = base_w;
        let node = node.clone();
        let c = crescendo_of(move |mhz| {
            Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(mhz))
                .with_node_config(node.clone())
        });
        let (e600, _) = c.normalized_for(600).unwrap();
        assert!(
            e600 > last_e600,
            "savings must shrink with base power: {e600} after {last_e600}"
        );
        last_e600 = e600;
    }
}

#[test]
fn faster_network_shrinks_savings_and_grows_delay_penalty() {
    let sweep = |bw: f64| {
        let network = NetworkParams {
            link_bw_bps: bw,
            ..NetworkParams::catalyst_2950_100m()
        };
        let c = crescendo_of(move |mhz| {
            Experiment::new(Workload::ft_test(8), DvsStrategy::StaticMhz(mhz))
                .with_network(network.clone())
        });
        c.normalized_for(600).unwrap()
    };
    let (e_slow, d_slow) = sweep(100e6);
    let (e_fast, d_fast) = sweep(1e9);
    assert!(
        e_fast > e_slow,
        "faster net must save less: {e_fast} vs {e_slow}"
    );
    assert!(
        d_fast > d_slow,
        "faster net must penalize delay more: {d_fast} vs {d_slow}"
    );
}

#[test]
fn phase_profile_attributes_ft_time_to_fft() {
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        trace_capacity: 1 << 16,
        ..EngineConfig::default()
    };
    let r = Experiment::new(Workload::ft_test(8), DvsStrategy::StaticMhz(1400))
        .with_engine(engine)
        .run();
    assert!(!r.trace.is_empty(), "trace must be captured");
    let profiles = profile_phases(&r);
    assert!(profiles.contains_key("fft"));
    assert!(profiles.contains_key("evolve"));
    let fft_frac = phase_time_fraction(&r, "fft");
    let evolve_frac = phase_time_fraction(&r, "evolve");
    assert!(
        fft_frac > evolve_frac,
        "fft ({fft_frac}) must dominate evolve ({evolve_frac})"
    );
    assert!(fft_frac > 0.3, "fft fraction {fft_frac}");
    // Energy attribution sums to within the run's total (phases do not
    // overlap-count whole-node base power across ranks... they can only
    // undercount the inter-phase gaps).
    let attributed: f64 = profiles.values().map(|p| p.energy_j).sum();
    assert!(attributed > 0.0);
    assert!(
        attributed <= r.total_energy_j() * 1.05,
        "attributed {attributed} vs total {}",
        r.total_energy_j()
    );
}

#[test]
fn transition_latency_only_bites_when_huge() {
    let run_with_latency = |latency: SimDuration| {
        let mut node = NodeConfig::inspiron_8600();
        node.ladder = power_model::DvfsLadder::new(node.ladder.points().to_vec(), latency);
        Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400))
            .with_node_config(node)
            .run()
    };
    let fast = run_with_latency(SimDuration::from_micros(10));
    let slow = run_with_latency(SimDuration::from_millis(50));
    assert!(slow.duration >= fast.duration);
    // 6 transitions x 50 ms = 0.3 s of stall appears in the breakdown.
    let stall: f64 = slow
        .breakdown
        .iter()
        .map(|b| b.transition.as_secs_f64())
        .sum();
    assert!(stall > 0.29 * 4.0 * 0.9, "transition stall {stall}");
}

#[test]
fn conservative_is_gentler_than_ondemand() {
    // Same blocking-wait workload: conservative makes fewer or equal
    // moves per decision opportunity and keeps delay closer to baseline.
    let engine = EngineConfig {
        wait_policy: WaitPolicy::PollThenBlock(SimDuration::from_millis(50)),
        ..EngineConfig::default()
    };
    let ondemand = Experiment::new(Workload::ft_b8(), DvsStrategy::OnDemand)
        .with_engine(engine.clone())
        .run();
    let conservative = Experiment::new(Workload::ft_b8(), DvsStrategy::Conservative)
        .with_engine(engine)
        .run();
    let od_rate = ondemand.transitions.iter().sum::<u64>() as f64 / ondemand.duration_secs();
    let cons_rate =
        conservative.transitions.iter().sum::<u64>() as f64 / conservative.duration_secs();
    assert!(
        cons_rate < od_rate,
        "conservative rate {cons_rate}/s vs ondemand {od_rate}/s"
    );
}

#[test]
fn freq_residency_sums_to_duration() {
    let r = Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400)).run();
    assert_eq!(r.freq_residency.len(), 4);
    for (node, states) in r.freq_residency.iter().enumerate() {
        let total: f64 = states.iter().map(|(_, d)| d.as_secs_f64()).sum();
        assert!(
            (total - r.duration_secs()).abs() < 1e-9,
            "node {node}: residency {total} vs duration {}",
            r.duration_secs()
        );
        // Dynamic control visits both 1400 and 600.
        let at = |mhz: u32| states.iter().find(|(m, _)| *m == mhz).unwrap().1;
        assert!(at(1400).as_secs_f64() > 0.0);
        assert!(at(600).as_secs_f64() > 0.0);
    }
}

#[test]
fn static_run_resides_at_one_frequency() {
    let r = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800)).run();
    for states in &r.freq_residency {
        for (mhz, d) in states {
            if *mhz == 800 {
                assert!((d.as_secs_f64() - r.duration_secs()).abs() < 1e-9);
            } else {
                assert_eq!(d.as_secs_f64(), 0.0, "leaked residency at {mhz} MHz");
            }
        }
    }
}

#[test]
fn battery_life_improves_at_the_energy_point() {
    use powerpack::{battery_life_secs, runs_per_charge};
    let fast = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(1400)).run();
    let slow = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(600)).run();
    let capacity = 72_000.0;
    let life_fast = battery_life_secs(&fast, capacity).unwrap();
    let life_slow = battery_life_secs(&slow, capacity).unwrap();
    assert!(
        life_slow > life_fast,
        "slower point must outlast: {life_slow} vs {life_fast}"
    );
    // And because FT saves energy per run at 600 MHz, runs-per-charge wins too.
    assert!(runs_per_charge(&slow, capacity).unwrap() > runs_per_charge(&fast, capacity).unwrap());
}
