//! End-to-end fault injection: each fault kind produces its documented
//! degradation, the degradation is measurable through the same pipeline
//! the paper used (profiles, outlier filtering), and every injection is
//! tallied in `RunResult::faults`.

use powerpack::{aligned_cluster_power, aligned_cluster_power_filtered, most_deviant_node};
use pwrperf::{DvsStrategy, EngineConfig, Experiment, Fault, FaultSpec, Workload};
use sim_core::SimDuration;

fn sampled_engine(faults: FaultSpec) -> EngineConfig {
    EngineConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        faults,
        ..EngineConfig::default()
    }
}

fn run_with(strategy: DvsStrategy, faults: FaultSpec) -> pwrperf::RunResult {
    Experiment::new(Workload::ft_test(4), strategy)
        .with_engine(sampled_engine(faults))
        .run()
}

fn baseline(strategy: DvsStrategy) -> pwrperf::RunResult {
    run_with(strategy, FaultSpec::default())
}

#[test]
fn compute_slowdown_makes_a_straggler() {
    let spec = FaultSpec::default().with(Fault::ComputeSlowdown {
        node: 0,
        factor: 2.0,
    });
    let base = baseline(DvsStrategy::StaticMhz(1400));
    let slow = run_with(DvsStrategy::StaticMhz(1400), spec);
    assert!(
        slow.duration_secs() > base.duration_secs() * 1.05,
        "straggler must stretch the run: {} vs {}",
        slow.duration_secs(),
        base.duration_secs()
    );
    assert!(slow.faults.compute_slowdowns > 0);
    // The straggler computes longer than in the healthy run.
    assert!(slow.breakdown[0].compute > base.breakdown[0].compute);
}

#[test]
fn degraded_link_slows_communication() {
    let spec = FaultSpec::default().with(Fault::DegradedLink {
        node: 0,
        bandwidth_factor: 0.1,
    });
    let base = baseline(DvsStrategy::StaticMhz(1400));
    let weak = run_with(DvsStrategy::StaticMhz(1400), spec);
    assert!(
        weak.duration_secs() > base.duration_secs(),
        "FT's all-to-all must feel a 10x weaker link: {} vs {}",
        weak.duration_secs(),
        base.duration_secs()
    );
    assert_eq!(weak.faults.degraded_links, 1);
}

#[test]
fn certain_dvfs_failure_pins_the_frequency() {
    let mut spec = FaultSpec::default();
    for node in 0..4 {
        spec = spec.with(Fault::DvfsFail {
            node,
            probability: 1.0,
        });
    }
    let base = baseline(DvsStrategy::DynamicBaseMhz(1400));
    assert!(base.transitions.iter().all(|&t| t == 6), "healthy FT: 6");
    let pinned = run_with(DvsStrategy::DynamicBaseMhz(1400), spec);
    assert!(
        pinned.transitions.iter().all(|&t| t == 0),
        "every request must fail: {:?}",
        pinned.transitions
    );
    assert!(pinned.faults.dvfs_failures > 0);
}

#[test]
fn dvfs_latency_spike_stretches_transitions() {
    let mut spec = FaultSpec::default();
    for node in 0..4 {
        spec = spec.with(Fault::DvfsLatency { node, factor: 50.0 });
    }
    let base = baseline(DvsStrategy::DynamicBaseMhz(1400));
    let spiked = run_with(DvsStrategy::DynamicBaseMhz(1400), spec);
    let stall = |r: &pwrperf::RunResult| -> SimDuration {
        r.breakdown
            .iter()
            .map(|b| b.transition)
            .fold(SimDuration::ZERO, |a, d| a + d)
    };
    assert!(stall(&spiked) > stall(&base));
    assert!(spiked.faults.dvfs_latency_spikes > 0);
    // Same number of transitions — only their cost changed.
    assert_eq!(spiked.transitions, base.transitions);
}

#[test]
fn stuck_battery_freezes_readings() {
    let spec = FaultSpec::default().with(Fault::BatteryStuck {
        node: 1,
        after_s: 0.0,
    });
    let r = run_with(DvsStrategy::StaticMhz(1400), spec);
    assert!(r.samples.len() > 2);
    let first = r.samples[0].node_battery_mwh[1];
    assert!(
        r.samples.iter().all(|s| s.node_battery_mwh[1] == first),
        "stuck register must repeat its first reading"
    );
    assert!(r.faults.battery_stuck_reads as usize >= r.samples.len() - 1);
}

#[test]
fn skipped_sampling_windows_shrink_the_profile() {
    let spec = FaultSpec::default().with(Fault::SampleSkip { probability: 0.5 });
    let base = baseline(DvsStrategy::StaticMhz(1400));
    let gappy = run_with(DvsStrategy::StaticMhz(1400), spec);
    assert!(gappy.faults.samples_skipped > 0);
    assert!(gappy.samples.len() < base.samples.len());
    // Sampling is measurement-only: the run itself is unperturbed, so
    // retained rows + skipped windows account for the full cadence.
    assert_eq!(
        gappy.samples.len() as u64 + gappy.faults.samples_skipped,
        base.samples.len() as u64
    );
    assert_eq!(
        gappy.total_energy_j().to_bits(),
        base.total_energy_j().to_bits(),
        "skipping measurements must not change the measured system"
    );
}

#[test]
fn biased_meter_is_caught_and_filtered_out() {
    let spec = FaultSpec::default().with(Fault::MeterBias {
        node: 2,
        factor: 1.6,
    });
    let base = baseline(DvsStrategy::StaticMhz(1400));
    let biased = run_with(DvsStrategy::StaticMhz(1400), spec);
    assert!(biased.faults.meter_biased_samples > 0);
    // The lie is visible in the measurement tap...
    let (node, _) = most_deviant_node(&biased.samples).expect("samples exist");
    assert_eq!(node, 2, "the sick meter is the outlier");
    // ...but not in ground truth: the meter lies, the system doesn't.
    assert_eq!(
        biased.total_energy_j().to_bits(),
        base.total_energy_j().to_bits()
    );
    // And the paper's filter actually excludes it from cluster aggregates.
    let (filtered, excluded) = aligned_cluster_power_filtered(&biased.samples, 0.25);
    assert_eq!(excluded, vec![2]);
    let unfiltered = aligned_cluster_power(&biased.samples);
    for ((_, f), (_, u)) in filtered.iter().zip(&unfiltered) {
        assert!(f < u, "filtered profile drops the inflated node");
    }
}

#[test]
#[should_panic(expected = "targets node 9")]
fn out_of_range_fault_target_is_rejected() {
    let spec = FaultSpec::default().with(Fault::ComputeSlowdown {
        node: 9,
        factor: 2.0,
    });
    let _ = run_with(DvsStrategy::StaticMhz(1400), spec);
}
