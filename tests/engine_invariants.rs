//! Property-based integration tests: randomly generated communication
//! patterns must always complete (no deadlock, no lost messages) with
//! conserved time and energy, under every strategy.

use cluster_sim::Cluster;
use dvfs::{CpuspeedGovernor, Governor, StaticGovernor};
use mem_model::WorkUnit;
use mpi_sim::{Engine, EngineConfig, Program, ProgramBuilder};
use proptest::prelude::*;
use pwrperf::WaitPolicy;
use sim_core::SimDuration;

/// A random but *deadlock-free by construction* job: a sequence of global
/// steps, each either a collective, a ring exchange, or per-rank compute.
#[derive(Debug, Clone)]
enum Step {
    Compute(u64),
    Barrier,
    Alltoall(u64),
    RingExchange(u64),
    Bcast(u64),
    Gather(u64),
    Allreduce(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..200_000_000).prop_map(Step::Compute),
        Just(Step::Barrier),
        (1u64..500_000).prop_map(Step::Alltoall),
        (1u64..2_000_000).prop_map(Step::RingExchange),
        (1u64..1_000_000).prop_map(Step::Bcast),
        (1u64..1_000_000).prop_map(Step::Gather),
        (1u64..100_000).prop_map(Step::Allreduce),
    ]
}

fn build_programs(ranks: usize, steps: &[Step]) -> Vec<Program> {
    (0..ranks)
        .map(|rank| {
            let mut b = ProgramBuilder::new(rank, ranks);
            for (i, step) in steps.iter().enumerate() {
                match step {
                    Step::Compute(cycles) => {
                        b.compute(WorkUnit::pure_cpu(*cycles as f64));
                    }
                    Step::Barrier => {
                        b.barrier();
                    }
                    Step::Alltoall(bytes) => {
                        b.alltoall(*bytes);
                    }
                    Step::RingExchange(bytes) => {
                        let dst = (rank + 1) % ranks;
                        let src = (rank + ranks - 1) % ranks;
                        b.sendrecv(dst, *bytes, i as u32, src, *bytes, i as u32);
                    }
                    Step::Bcast(bytes) => {
                        b.bcast(i % ranks, *bytes);
                    }
                    Step::Gather(bytes) => {
                        b.gather(i % ranks, *bytes);
                    }
                    Step::Allreduce(bytes) => {
                        b.allreduce(*bytes);
                    }
                }
            }
            b.build()
        })
        .collect()
}

fn governors(ranks: usize, kind: u8) -> Vec<Box<dyn Governor>> {
    (0..ranks)
        .map(|_| -> Box<dyn Governor> {
            match kind {
                0 => Box::new(StaticGovernor::performance()),
                1 => Box::new(StaticGovernor::powersave()),
                _ => Box::new(CpuspeedGovernor::stock()),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any structured communication pattern completes; wall-clock and
    /// energy are finite and positive; per-rank accounting adds up.
    #[test]
    fn random_jobs_complete_and_conserve(
        ranks in 2usize..6,
        steps in proptest::collection::vec(step_strategy(), 1..12),
        gov_kind in 0u8..3,
        blocking in any::<bool>(),
    ) {
        let cluster = Cluster::paper_testbed(ranks);
        let programs = build_programs(ranks, &steps);
        let config = EngineConfig {
            wait_policy: if blocking {
                WaitPolicy::PollThenBlock(SimDuration::from_millis(10))
            } else {
                WaitPolicy::BusyPoll
            },
            ..EngineConfig::default()
        };
        let result = Engine::new(cluster, programs, governors(ranks, gov_kind), config).run();

        prop_assert!(result.duration_secs() >= 0.0);
        prop_assert!(result.total_energy_j().is_finite());
        prop_assert!(result.total_energy_j() >= 0.0);
        for b in &result.breakdown {
            prop_assert!(b.total() <= result.duration + SimDuration::from_nanos(1));
        }
        // Energy components are non-negative and sum to the total.
        let mut sum = 0.0;
        for n in &result.per_node {
            prop_assert!(n.cpu_dynamic_j >= 0.0 && n.base_j >= 0.0);
            sum += n.total_j();
        }
        prop_assert!((sum - result.total_energy_j()).abs() < 1e-6 * sum.max(1.0));
    }

    /// Lowering the static frequency never reduces the wall-clock time
    /// and never increases CPU dynamic energy for the same job.
    #[test]
    fn frequency_monotonicity_holds_for_random_jobs(
        ranks in 2usize..5,
        steps in proptest::collection::vec(step_strategy(), 1..8),
    ) {
        let run_at = |idx: usize| {
            let cluster = Cluster::paper_testbed(ranks);
            let programs = build_programs(ranks, &steps);
            let governors: Vec<Box<dyn Governor>> = (0..ranks)
                .map(|_| Box::new(StaticGovernor::pinned(idx)) as Box<dyn Governor>)
                .collect();
            Engine::new(cluster, programs, governors, EngineConfig::default()).run()
        };
        let slow = run_at(0);
        let fast = run_at(4);
        prop_assert!(slow.duration >= fast.duration);
        prop_assert!(
            slow.total.cpu_dynamic_j <= fast.total.cpu_dynamic_j + 1e-9,
            "dynamic energy must not grow when slowing: slow {} fast {}",
            slow.total.cpu_dynamic_j,
            fast.total.cpu_dynamic_j
        );
    }
}
