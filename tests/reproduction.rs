//! Integration tests asserting the paper's evaluation *shapes* hold in
//! the reproduction: who wins, roughly by how much, where crossovers
//! fall. Absolute joules are model-dependent; these bounds encode the
//! qualitative claims of each figure plus loose quantitative bands around
//! the paper's numbers.

use edp_metrics::{best_operating_point, Crescendo, DELTA_ENERGY, DELTA_HPC, DELTA_PERFORMANCE};
use powerpack::{CommMicroConfig, MicroConfig};
use pwrperf::{cpuspeed_point, dynamic_crescendo, static_crescendo, Workload};

fn assert_monotone_energy_down_delay_up(c: &Crescendo, label: &str) {
    let n = c.normalized();
    for pair in n.windows(2) {
        let (m0, e0, d0) = pair[0];
        let (m1, e1, d1) = pair[1];
        assert!(m0 > m1, "{label}: expected descending MHz order");
        assert!(
            e1 <= e0 + 1e-9,
            "{label}: energy must fall as MHz drops ({m1} MHz)"
        );
        assert!(
            d1 >= d0 - 1e-9,
            "{label}: delay must rise as MHz drops ({m1} MHz)"
        );
    }
}

#[test]
fn fig3_ft_b_static_crescendo_matches_paper_shape() {
    let c = static_crescendo(&Workload::ft_b8());
    assert_monotone_energy_down_delay_up(&c, "FT.B");
    let (e600, d600) = c.normalized_for(600).unwrap();
    // Paper: E=0.655, D=1.068.
    assert!((0.60..=0.75).contains(&e600), "FT.B E600 = {e600}");
    assert!((1.04..=1.13).contains(&d600), "FT.B D600 = {d600}");
}

#[test]
fn fig3_cpuspeed_rides_the_top_frequency() {
    let c = static_crescendo(&Workload::ft_b8());
    let r = c.reference();
    let (e, d) = cpuspeed_point(&Workload::ft_b8());
    // Paper: cpuspeed ~= static 1.4 GHz (E=0.966, D=0.988).
    assert!(
        (e / r.energy_j - 1.0).abs() < 0.05,
        "cpuspeed E {}",
        e / r.energy_j
    );
    assert!(
        (d / r.delay_s - 1.0).abs() < 0.03,
        "cpuspeed D {}",
        d / r.delay_s
    );
}

#[test]
fn table3_ft_b_best_points() {
    let c = static_crescendo(&Workload::ft_b8());
    // Paper Table 3: energy=600, performance=1400, HPC=1000 (ours lands
    // 800-1000 on a nearly flat metric — accept the band).
    assert_eq!(best_operating_point(&c, DELTA_ENERGY), Some(600));
    assert_eq!(best_operating_point(&c, DELTA_PERFORMANCE), Some(1400));
    let hpc = best_operating_point(&c, DELTA_HPC).unwrap();
    assert!((800..=1000).contains(&hpc), "FT.B HPC point {hpc}");
}

#[test]
fn fig4_ft_c_dynamic_saves_energy_with_small_slowdown() {
    let stat = static_crescendo(&Workload::ft_c8());
    let dyn_c = dynamic_crescendo(&Workload::ft_c8());
    let r = stat.reference();

    // Paper: dynamic from 1.4 GHz saves 32.6% with 7.8% slowdown.
    let d1400 = dyn_c.points().iter().find(|p| p.mhz == 1400).unwrap();
    let e = d1400.energy_j / r.energy_j;
    let d = d1400.delay_s / r.delay_s;
    assert!(e < 0.75, "dyn-1400 energy {e}");
    assert!(d < 1.13, "dyn-1400 delay {d}");

    // Dynamic's energy/delay barely depend on the base point (paper:
    // "energy and delay doesn't change much under different operating
    // points because most execution time resides in fft()").
    let es: Vec<f64> = dyn_c.points().iter().map(|p| p.energy_j).collect();
    let spread = (es.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - es.iter().cloned().fold(f64::INFINITY, f64::min))
        / es[0];
    assert!(spread < 0.10, "dynamic energy spread {spread}");

    // At every base point, dynamic uses no more energy than static at the
    // same base (it only ever adds downscaled regions).
    for p in dyn_c.points() {
        let s = stat.points().iter().find(|q| q.mhz == p.mhz).unwrap();
        assert!(
            p.energy_j <= s.energy_j * 1.001,
            "dyn {} MHz energy above static",
            p.mhz
        );
    }
}

#[test]
fn fig5_transpose_static_saves_energy_with_tiny_slowdown() {
    let c = static_crescendo(&Workload::transpose_paper());
    assert_monotone_energy_down_delay_up(&c, "transpose");
    let (e600, d600) = c.normalized_for(600).unwrap();
    // Paper: -19.7% energy, +2.4% delay; our wait-dominated model saves
    // more, but the headline (big saving, tiny slowdown) must hold.
    assert!(e600 < 0.85, "transpose E600 = {e600}");
    assert!(d600 < 1.05, "transpose D600 = {d600}");
}

#[test]
fn fig6_memory_micro_is_a_dvs_jackpot() {
    let c = static_crescendo(&Workload::MemoryMicro(MicroConfig::default()));
    let (e600, d600) = c.normalized_for(600).unwrap();
    // Paper: E=0.593, D=1.054.
    assert!((0.52..=0.66).contains(&e600), "memory E600 = {e600}");
    assert!((1.02..=1.09).contains(&d600), "memory D600 = {d600}");
    assert_eq!(best_operating_point(&c, DELTA_ENERGY), Some(600));
}

#[test]
fn fig7_cpu_micro_punishes_downscaling() {
    let c = static_crescendo(&Workload::CpuMicro(MicroConfig::default()));
    let (e600, d600) = c.normalized_for(600).unwrap();
    // Paper: delay +134%; energy *increases* at the bottom point.
    assert!((d600 - 1.4 / 0.6).abs() < 0.01, "cpu D600 = {d600}");
    assert!(
        e600 > 1.0,
        "cpu E600 = {e600} should exceed the 1.4 GHz energy"
    );
    // Energy at 600 exceeds the mid-ladder minimum (paper: min at 800).
    let (e800, _) = c.normalized_for(800).unwrap();
    let (e1000, _) = c.normalized_for(1000).unwrap();
    assert!(e600 > e800.min(e1000), "no rise at the bottom point");
    // Performance-best is the only sensible pick.
    assert_eq!(best_operating_point(&c, DELTA_PERFORMANCE), Some(1400));
    assert_eq!(best_operating_point(&c, DELTA_HPC), Some(1400));
}

#[test]
fn fig8_comm_micros_favor_energy() {
    for (cfg, label, d_cap) in [
        (CommMicroConfig::paper_256k(), "256k", 1.08),
        (CommMicroConfig::paper_4k_strided(), "4k", 1.09),
    ] {
        let c = static_crescendo(&Workload::Comm(cfg));
        let (e600, d600) = c.normalized_for(600).unwrap();
        assert!((0.60..=0.78).contains(&e600), "{label} E600 = {e600}");
        assert!(d600 < d_cap, "{label} D600 = {d600}");
    }
}

#[test]
fn fig1_spec_proxies_bracket_the_behaviour_space() {
    let swim = static_crescendo(&Workload::Swim);
    let mgrid = static_crescendo(&Workload::Mgrid);
    let (swim_e, swim_d) = swim.normalized_for(600).unwrap();
    let (mgrid_e, mgrid_d) = mgrid.normalized_for(600).unwrap();
    // swim: steep energy drop, gentle delay; mgrid: the reverse.
    assert!(swim_e < 0.70 && swim_d < 1.12, "swim {swim_e}/{swim_d}");
    assert!(mgrid_e > 0.90 && mgrid_d > 2.0, "mgrid {mgrid_e}/{mgrid_d}");
    // Table 1: performance pick is 1400 for both; energy pick is the
    // bottom for swim but not for mgrid's flat curve... paper puts
    // mgrid's energy point at 600; ours bottoms mid-ladder. Both agree
    // the HPC pick separates the codes.
    assert_eq!(best_operating_point(&swim, DELTA_PERFORMANCE), Some(1400));
    assert_eq!(best_operating_point(&mgrid, DELTA_PERFORMANCE), Some(1400));
    assert_eq!(best_operating_point(&swim, DELTA_ENERGY), Some(600));
    let swim_hpc = best_operating_point(&swim, DELTA_HPC).unwrap();
    let mgrid_hpc = best_operating_point(&mgrid, DELTA_HPC).unwrap();
    assert!(
        swim_hpc < mgrid_hpc,
        "HPC picks must separate: swim {swim_hpc}, mgrid {mgrid_hpc}"
    );
    assert_eq!(mgrid_hpc, 1400);
}

#[test]
fn headline_claim_30pct_savings_under_5pct_impact_exists() {
    // "We achieved total energy savings at times of 30% with minimal
    // (<5%) impact on performance." Somewhere in our experiment space the
    // same must hold.
    let mut found = false;
    for w in [Workload::transpose_paper(), Workload::ft_c8()] {
        let c = static_crescendo(&w);
        for (_, e, d) in c.normalized() {
            if e <= 0.70 && d <= 1.05 {
                found = true;
            }
        }
        let dyn_c = dynamic_crescendo(&w);
        let r = c.reference();
        for p in dyn_c.points() {
            if p.energy_j / r.energy_j <= 0.70 && p.delay_s / r.delay_s <= 1.05 {
                found = true;
            }
        }
    }
    assert!(found, "no operating point achieves the paper's headline");
}
