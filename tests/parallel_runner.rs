//! Determinism and degraded-mode behavior of the parallel batch runner:
//! fanning experiments over worker threads must return results
//! **bit-identical** to running them sequentially, in the same order —
//! with or without fault injection armed — and a poisoned experiment must
//! cost exactly its own slot, never the batch. Worker counts are pinned
//! with the explicit `run_batch_with`/`BatchPolicy` overrides rather than
//! `PWRPERF_THREADS` (mutating the shared process environment from one
//! test races every sibling test that reads it).

use mpi_sim::RunResult;
use pwrperf::{
    run_batch_checked_with, run_batch_with, BatchPolicy, DvsStrategy, Experiment, FaultSpec,
    Workload,
};

fn batch_for(workload: &Workload) -> Vec<Experiment> {
    vec![
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1400)),
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(600)),
        Experiment::new(workload.clone(), DvsStrategy::DynamicBaseMhz(1400)),
        Experiment::new(workload.clone(), DvsStrategy::Cpuspeed),
    ]
}

/// Every float in a RunResult, for exact bitwise comparison. `PartialEq`
/// on `RunResult` already compares all fields; this catches the subtler
/// failure of two floats comparing equal while differing in bits
/// (e.g. 0.0 vs -0.0 from a reordered accumulation).
fn energy_bits(results: &[RunResult]) -> Vec<u64> {
    results
        .iter()
        .flat_map(|r| {
            [r.total_energy_j().to_bits(), r.duration_secs().to_bits()]
                .into_iter()
                .chain(r.per_node.iter().map(|n| n.total_j().to_bits()))
        })
        .collect()
}

fn assert_parallel_matches_sequential(workload: &Workload) {
    let sequential = run_batch_with(batch_for(workload), Some(1));
    let parallel = run_batch_with(batch_for(workload), Some(4));
    assert_eq!(parallel.len(), sequential.len());
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(p, s, "experiment {i} diverged under parallel execution");
    }
    assert_eq!(energy_bits(&parallel), energy_bits(&sequential));
}

#[test]
fn ft_b_batch_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(&Workload::ft_b8());
}

#[test]
fn transpose_batch_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(&Workload::transpose_paper());
}

#[test]
fn faulted_batch_is_bit_identical_across_thread_counts() {
    // Fault injection draws from per-run seeded RNG, so worker count must
    // not leak into faulted results either.
    let spec =
        FaultSpec::parse("seed:42,slow:1:1.3,skip-sample:0.2,dvfs-fail:0:0.5").expect("valid spec");
    let make = |spec: &FaultSpec| -> Vec<Experiment> {
        batch_for(&Workload::ft_test(4))
            .into_iter()
            .map(|e| e.with_faults(spec.clone()))
            .collect()
    };
    let sequential = run_batch_with(make(&spec), Some(1));
    let parallel = run_batch_with(make(&spec), Some(4));
    assert_eq!(energy_bits(&parallel), energy_bits(&sequential));
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(p, s, "faulted experiment {i} diverged");
        assert_eq!(p.faults, s.faults, "fault counts diverged at slot {i}");
    }
    // The spec actually fired (otherwise this test proves nothing).
    assert!(sequential.iter().any(|r| r.faults.total() > 0));
}

/// An experiment whose construction panics (negative battery capacity
/// trips `SmartBattery::new`'s validity assert) — the checked runner must
/// contain the blast radius to its slot.
fn poisoned(workload: &Workload) -> Experiment {
    let node = cluster_sim::NodeConfig {
        battery_mwh: -1.0,
        ..cluster_sim::NodeConfig::inspiron_8600()
    };
    Experiment::new(workload.clone(), DvsStrategy::StaticMhz(800)).with_node_config(node)
}

#[test]
fn checked_batch_isolates_a_panicking_slot() {
    let w = Workload::ft_test(2);
    let mut experiments = batch_for(&w);
    experiments.insert(2, poisoned(&w));
    let policy = BatchPolicy {
        workers: Some(2),
        retries: 1,
        ..BatchPolicy::default()
    };
    let outcomes = run_batch_checked_with(experiments, policy);
    assert_eq!(outcomes.len(), 5);
    // Exactly the poisoned slot fails; the error names it and its attempts.
    let err = outcomes[2].as_ref().expect_err("slot 2 was poisoned");
    assert_eq!(err.index, 2);
    assert_eq!(err.attempts, 2, "one initial run + one retry");
    assert!(
        err.message.contains("capacity_mwh"),
        "panic message surfaced: {}",
        err.message
    );
    // Every other slot succeeded, in input order, bit-identical to a
    // sequential run of the healthy batch.
    let healthy = run_batch_with(batch_for(&w), Some(1));
    let ok: Vec<&RunResult> = outcomes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, r)| r.as_ref().expect("healthy slot"))
        .collect();
    for (h, o) in healthy.iter().zip(ok) {
        assert_eq!(h, o);
    }
}

#[test]
fn checked_batch_with_no_failures_matches_unchecked() {
    let w = Workload::ft_test(2);
    let checked = run_batch_checked_with(
        batch_for(&w),
        BatchPolicy {
            workers: Some(2),
            retries: 0,
            ..BatchPolicy::default()
        },
    );
    let plain = run_batch_with(batch_for(&w), Some(2));
    assert_eq!(checked.len(), plain.len());
    for (c, p) in checked.iter().zip(&plain) {
        assert_eq!(c.as_ref().expect("no failures"), p);
    }
}
