//! Determinism of the parallel batch runner: fanning experiments over
//! worker threads must return results **bit-identical** to running them
//! sequentially, in the same order. Both tests pin `PWRPERF_THREADS=4`
//! (the same value, since the process environment is shared across test
//! threads) so `run_batch` exercises the multi-worker path even on a
//! single-core host.

use mpi_sim::RunResult;
use pwrperf::{run_batch, DvsStrategy, Experiment, Workload, THREADS_ENV};

fn batch_for(workload: &Workload) -> Vec<Experiment> {
    vec![
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(1400)),
        Experiment::new(workload.clone(), DvsStrategy::StaticMhz(600)),
        Experiment::new(workload.clone(), DvsStrategy::DynamicBaseMhz(1400)),
        Experiment::new(workload.clone(), DvsStrategy::Cpuspeed),
    ]
}

/// Every float in a RunResult, for exact bitwise comparison. `PartialEq`
/// on `RunResult` already compares all fields; this catches the subtler
/// failure of two floats comparing equal while differing in bits
/// (e.g. 0.0 vs -0.0 from a reordered accumulation).
fn energy_bits(results: &[RunResult]) -> Vec<u64> {
    results
        .iter()
        .flat_map(|r| {
            [r.total_energy_j().to_bits(), r.duration_secs().to_bits()]
                .into_iter()
                .chain(r.per_node.iter().map(|n| n.total_j().to_bits()))
        })
        .collect()
}

fn assert_parallel_matches_sequential(workload: &Workload) {
    std::env::set_var(THREADS_ENV, "4");
    let sequential: Vec<RunResult> = batch_for(workload).iter().map(Experiment::run).collect();
    let parallel = run_batch(batch_for(workload));
    assert_eq!(parallel.len(), sequential.len());
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(p, s, "experiment {i} diverged under parallel execution");
    }
    assert_eq!(energy_bits(&parallel), energy_bits(&sequential));
}

#[test]
fn ft_b_batch_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(&Workload::ft_b8());
}

#[test]
fn transpose_batch_is_bit_identical_across_thread_counts() {
    assert_parallel_matches_sequential(&Workload::transpose_paper());
}
