//! Determinism and conservation invariants across the full stack.

use power_model::Component;
use pwrperf::{DvsStrategy, EngineConfig, Experiment, Workload};
use sim_core::SimDuration;

fn run_twice(strategy: DvsStrategy) {
    let make = || Experiment::new(Workload::ft_test(4), strategy).run();
    let a = make();
    let b = make();
    assert_eq!(
        a.duration,
        b.duration,
        "{}: duration differs",
        strategy.label()
    );
    assert_eq!(
        a.total_energy_j().to_bits(),
        b.total_energy_j().to_bits(),
        "{}: energy differs at the bit level",
        strategy.label()
    );
    assert_eq!(a.transitions, b.transitions);
    for (x, y) in a.breakdown.iter().zip(&b.breakdown) {
        assert_eq!(x.compute, y.compute);
        assert_eq!(x.mem_stall, y.mem_stall);
        assert_eq!(x.wait_busy, y.wait_busy);
        assert_eq!(x.wait_blocked, y.wait_blocked);
        assert_eq!(x.transition, y.transition);
    }
}

#[test]
fn all_strategies_are_bit_deterministic() {
    for strategy in [
        DvsStrategy::StaticMhz(1400),
        DvsStrategy::StaticMhz(600),
        DvsStrategy::Cpuspeed,
        DvsStrategy::DynamicBaseMhz(1200),
        DvsStrategy::OnDemand,
    ] {
        run_twice(strategy);
    }
}

#[test]
fn component_energies_sum_to_total() {
    let r = Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400)).run();
    for (node, report) in r.per_node.iter().enumerate() {
        let sum: f64 = Component::ALL.iter().map(|c| report.component(*c)).sum();
        assert!(
            (sum - report.total_j()).abs() < 1e-9,
            "node {node}: components {sum} != total {}",
            report.total_j()
        );
    }
    let per_node_sum: f64 = r.per_node.iter().map(|n| n.total_j()).sum();
    assert!((per_node_sum - r.total_energy_j()).abs() < 1e-9);
}

#[test]
fn breakdowns_account_for_each_ranks_lifetime() {
    let r = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1000)).run();
    for (rank, b) in r.breakdown.iter().enumerate() {
        let total = b.total();
        assert!(
            total <= r.duration + SimDuration::from_nanos(1),
            "rank {rank} accounted {total} > run {}",
            r.duration
        );
        // Each rank was doing *something* for most of the run.
        assert!(
            total.as_secs_f64() > 0.9 * r.duration_secs(),
            "rank {rank} unaccounted time: {total} of {}",
            r.duration
        );
    }
}

#[test]
fn sampled_power_integrates_to_metered_energy() {
    // Riemann-sum the 1 Hz power samples; it must approximate the exact
    // per-component integral the meter keeps.
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(5)),
        ..EngineConfig::default()
    };
    let r = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(1400))
        .with_engine(engine)
        .run();
    assert!(
        r.samples.len() > 20,
        "need samples, got {}",
        r.samples.len()
    );
    let dt = 0.005;
    let riemann: f64 = r
        .samples
        .iter()
        .map(|s| s.node_power_w.iter().sum::<f64>() * dt)
        .sum();
    let truth = r.total_energy_j();
    let err = (riemann - truth).abs() / truth;
    assert!(err < 0.05, "Riemann {riemann} vs meter {truth} ({err})");
}

#[test]
fn static_strategies_never_transition() {
    let r = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(800)).run();
    assert!(r.transitions.iter().all(|&t| t == 0), "{:?}", r.transitions);
}

#[test]
fn dynamic_transitions_match_instrumentation() {
    let r = Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400)).run();
    // FT test class: 3 iterations x (down + restore) per rank.
    for (node, &t) in r.transitions.iter().enumerate() {
        assert_eq!(t, 6, "node {node} transitions");
    }
}

#[test]
fn empty_fault_spec_is_bit_identical_to_default_config() {
    // The fault-injection hard guarantee: an empty spec arms nothing, so
    // a run configured with it is byte-for-byte the run without it.
    use pwrperf::FaultSpec;
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(50)),
        faults: FaultSpec::parse("").expect("empty spec parses"),
        ..EngineConfig::default()
    };
    let plain_engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(50)),
        ..EngineConfig::default()
    };
    let strategy = DvsStrategy::DynamicBaseMhz(1400);
    let with_empty = Experiment::new(Workload::ft_test(4), strategy)
        .with_engine(engine)
        .run();
    let plain = Experiment::new(Workload::ft_test(4), strategy)
        .with_engine(plain_engine)
        .run();
    assert_eq!(with_empty, plain);
    assert_eq!(
        with_empty.total_energy_j().to_bits(),
        plain.total_energy_j().to_bits()
    );
    assert_eq!(with_empty.faults.total(), 0);
}

#[test]
fn faulted_runs_are_bit_deterministic() {
    // Same seed + same spec => bit-identical results, fault counts
    // included: injected degradation is part of the reproducible state.
    use pwrperf::FaultSpec;
    let spec = FaultSpec::parse(
        "seed:7,slow:2:1.5,battery-noise:1:3,skip-sample:0.3,dvfs-fail:0:0.4,dvfs-latency:3:5.0,weak-link:1:0.5,meter-bias:0:1.2,battery-stuck:3:1",
    )
    .expect("valid spec");
    let make = || {
        let engine = EngineConfig {
            sample_interval: Some(SimDuration::from_millis(50)),
            faults: spec.clone(),
            ..EngineConfig::default()
        };
        Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(engine)
            .run()
    };
    let a = make();
    let b = make();
    assert_eq!(a, b);
    assert_eq!(a.total_energy_j().to_bits(), b.total_energy_j().to_bits());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        for (p, q) in x.node_power_w.iter().zip(&y.node_power_w) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(x.node_battery_mwh, y.node_battery_mwh);
    }
    assert_eq!(a.faults, b.faults);
    assert!(a.faults.total() > 0, "the rich spec must actually fire");
}

#[test]
fn sharded_runs_are_bit_identical_to_sequential() {
    // The sharded planner's hard guarantee: any shard count produces the
    // same `RunResult` as sequential execution — durations, energies,
    // breakdowns, samples, metrics registry, traces, all of it. Events
    // still apply in (time, seq) order; shards only precompute plans
    // with the same pure function the inline path uses.
    use pwrperf::Topology;
    use workloads::{CgClass, MgClass};
    let workloads = [
        Workload::ft_test(4),
        Workload::Cg {
            class: CgClass::Test,
            ranks: 4,
        },
        Workload::Mg {
            class: MgClass::Test,
            ranks: 4,
        },
    ];
    let make = |w: &Workload, shards: usize, topology: Topology| {
        let engine = EngineConfig {
            metrics: true,
            trace_capacity: 1 << 12,
            sample_interval: Some(SimDuration::from_millis(50)),
            topology,
            shards,
            ..EngineConfig::default()
        };
        Experiment::new(w.clone(), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(engine)
            .run()
    };
    for w in &workloads {
        let sequential = make(w, 1, Topology::Flat);
        for shards in [2, 8] {
            let sharded = make(w, shards, Topology::Flat);
            assert_eq!(sequential, sharded, "{}: {shards} shards", w.label());
            assert_eq!(
                sequential.total_energy_j().to_bits(),
                sharded.total_energy_j().to_bits()
            );
        }
        // And on a hierarchical fabric, where flows share trunk links.
        let tree = Topology::FatTree {
            radix: 2,
            oversub: 2.0,
        };
        let tree_sequential = make(w, 1, tree);
        let tree_sharded = make(w, 8, tree);
        assert_eq!(tree_sequential, tree_sharded, "{}: fat-tree", w.label());
    }
}

#[test]
fn sharded_faulted_runs_are_bit_identical_to_sequential() {
    // Fault injection mutates per-rank counters as faults fire; the
    // planner must not reorder or pre-consume those draws. The plan
    // carries only pre-fault cycles — `scale_compute` still runs on the
    // sequential apply path, so the RNG stream is untouched.
    use pwrperf::FaultSpec;
    let spec =
        FaultSpec::parse("seed:11,slow:1:1.4,dvfs-fail:2:0.3,weak-link:3:0.6").expect("valid spec");
    let make = |shards: usize| {
        let engine = EngineConfig {
            metrics: true,
            sample_interval: Some(SimDuration::from_millis(50)),
            faults: spec.clone(),
            shards,
            ..EngineConfig::default()
        };
        Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(engine)
            .run()
    };
    let sequential = make(1);
    assert!(sequential.faults.total() > 0, "the spec must actually fire");
    for shards in [2, 8] {
        let sharded = make(shards);
        assert_eq!(sequential, sharded, "{shards} shards");
        assert_eq!(sequential.faults, sharded.faults);
    }
}

#[test]
fn faster_cluster_never_loses_on_delay() {
    // Sanity across the ladder: delay is monotone in frequency for a
    // fixed workload and static control.
    let mut last = f64::INFINITY;
    for mhz in [600, 800, 1000, 1200, 1400] {
        let r = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(mhz)).run();
        assert!(
            r.duration_secs() <= last + 1e-9,
            "{mhz} MHz slower than the previous point"
        );
        last = r.duration_secs();
    }
}
