//! Determinism sanitizer (`--features simsan`): the engine's checkpoint
//! hash stream — state digests at phase boundaries, sample instants, and
//! the pre-finalize instant — must be bit-identical at every shard
//! count. This is strictly stronger than comparing final `RunResult`s:
//! a shard-order divergence that later cancels out still trips the
//! sanitizer at the first checkpoint it perturbs.
//!
//! CI runs this suite with `PWRPERF_SHARDS=1,2,8`; unset, the same three
//! counts are the default.

#![cfg(feature = "simsan")]

use cluster_sim::Cluster;
use dvfs::CapPolicy;
use mpi_sim::{Engine, EngineConfig, FaultSpec, RunResult};
use pwrperf::{DvsStrategy, Workload};
use sim_core::SimDuration;
use workloads::{CgClass, MgClass};

/// Shard counts under test: `PWRPERF_SHARDS` as a comma list, else 1/2/8.
fn shard_counts() -> Vec<usize> {
    std::env::var("PWRPERF_SHARDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 8])
}

/// The paper's benchmark trio at test scale.
fn workloads() -> Vec<Workload> {
    vec![
        Workload::ft_test(4),
        Workload::Cg {
            class: CgClass::Test,
            ranks: 4,
        },
        Workload::Mg {
            class: MgClass::Test,
            ranks: 4,
        },
    ]
}

/// Build the engine exactly as `Experiment::run` does and run it under
/// the sanitizer.
fn sanitized(
    w: &Workload,
    strategy: DvsStrategy,
    shards: usize,
    faults: &str,
) -> (RunResult, Vec<u64>) {
    let cluster = Cluster::paper_testbed(w.ranks());
    let programs = w.programs(strategy.wants_instrumentation());
    let controller = strategy.controller(cluster.nodes());
    let config = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(50)),
        faults: FaultSpec::parse(faults).expect("valid fault spec"),
        shards,
        ..EngineConfig::default()
    };
    Engine::with_controller(cluster, programs, controller, config).run_sanitized()
}

#[test]
fn hash_streams_are_bit_identical_across_shard_counts() {
    for w in &workloads() {
        let (_, baseline) = sanitized(w, DvsStrategy::DynamicBaseMhz(1400), 1, "");
        assert!(
            baseline.len() > 10,
            "{}: expected a real checkpoint stream, got {}",
            w.label(),
            baseline.len()
        );
        for shards in shard_counts() {
            let (_, stream) = sanitized(w, DvsStrategy::DynamicBaseMhz(1400), shards, "");
            assert_eq!(
                stream,
                baseline,
                "{}: sanitizer stream diverged at {shards} shards",
                w.label()
            );
        }
    }
}

#[test]
fn faulted_hash_streams_are_bit_identical_across_shard_counts() {
    // Fault injection mutates per-rank state as faults fire; the stream
    // must still agree checkpoint-for-checkpoint at every shard count.
    let spec = "seed:11,slow:1:1.4,dvfs-fail:2:0.3,weak-link:3:0.6";
    let w = Workload::ft_test(4);
    let (result, baseline) = sanitized(&w, DvsStrategy::DynamicBaseMhz(1400), 1, spec);
    assert!(result.faults.total() > 0, "the spec must actually fire");
    for shards in shard_counts() {
        let (_, stream) = sanitized(&w, DvsStrategy::DynamicBaseMhz(1400), shards, spec);
        assert_eq!(
            stream, baseline,
            "faulted sanitizer stream diverged at {shards} shards"
        );
    }
}

#[test]
fn stateful_controller_digests_agree_across_shard_counts() {
    // The power-cap controller folds its replanning state into every
    // checkpoint via `state_digest`; a shard-dependent controller state
    // would diverge here even if node-level results happened to agree.
    let strategy = DvsStrategy::PowerCap {
        watts: 100,
        policy: CapPolicy::Redistribute,
    };
    let w = Workload::ft_test(4);
    let (_, baseline) = sanitized(&w, strategy, 1, "");
    for shards in shard_counts() {
        let (_, stream) = sanitized(&w, strategy, shards, "");
        assert_eq!(
            stream, baseline,
            "power-cap sanitizer stream diverged at {shards} shards"
        );
    }
}

#[test]
fn sanitized_runs_report_the_same_result_as_plain_runs() {
    // The sanitizer observes; it must not perturb. `run_sanitized` has
    // to hand back the byte-for-byte `RunResult` of `Engine::run`.
    let w = Workload::ft_test(4);
    let strategy = DvsStrategy::DynamicBaseMhz(1400);
    let make_engine = || {
        let cluster = Cluster::paper_testbed(w.ranks());
        let programs = w.programs(strategy.wants_instrumentation());
        let controller = strategy.controller(cluster.nodes());
        let config = EngineConfig {
            sample_interval: Some(SimDuration::from_millis(50)),
            ..EngineConfig::default()
        };
        Engine::with_controller(cluster, programs, controller, config)
    };
    let plain = make_engine().run();
    let (sanitized, hashes) = make_engine().run_sanitized();
    assert_eq!(plain, sanitized);
    assert_eq!(
        plain.total_energy_j().to_bits(),
        sanitized.total_energy_j().to_bits()
    );
    assert!(!hashes.is_empty());
}

#[test]
fn different_workloads_produce_different_streams() {
    // Guard against a degenerate hasher: distinct simulations must not
    // share a checkpoint stream.
    let (_, ft) = sanitized(
        &Workload::ft_test(4),
        DvsStrategy::DynamicBaseMhz(1400),
        1,
        "",
    );
    let cg = Workload::Cg {
        class: CgClass::Test,
        ranks: 4,
    };
    let (_, cg_stream) = sanitized(&cg, DvsStrategy::DynamicBaseMhz(1400), 1, "");
    assert_ne!(ft, cg_stream);
}
