//! The promoted engine invariants stay checked in release builds.
//!
//! These used to be `debug_assert!`s: time monotonicity in the
//! time-weighted integrators and the fluid network, and measurement-layer
//! sanity in the battery model. A violation silently corrupted energy
//! accounting in release builds; now it either panics loudly (internal
//! invariants, converted to per-slot errors by `run_batch_checked`) or
//! surfaces as a typed `MeasurementError` (measurement APIs).

use net_model::{FluidNetwork, NetworkParams};
use power_model::battery::{MeasurementError, SmartBattery};
use pwrperf::{run_batch_checked, DvsStrategy, Experiment, Workload};
use sim_core::{SimTime, TimeWeighted};

#[test]
#[should_panic(expected = "time went backwards")]
fn time_weighted_rejects_backwards_advance() {
    let mut tw = TimeWeighted::new(SimTime::from_secs(10), 5.0);
    tw.advance(SimTime::from_secs(5));
}

#[test]
#[should_panic(expected = "precedes last change")]
fn time_weighted_rejects_backwards_integral_read() {
    let mut tw = TimeWeighted::new(SimTime::ZERO, 5.0);
    tw.set(SimTime::from_secs(10), 7.0);
    let _ = tw.integral_at(SimTime::from_secs(5));
}

#[test]
#[should_panic(expected = "network time went backwards")]
fn fluid_network_rejects_backwards_advance() {
    let mut net = FluidNetwork::new(NetworkParams::default(), 2);
    net.advance(SimTime::from_secs(10));
    net.advance(SimTime::from_secs(5));
}

#[test]
fn battery_invariants_are_typed_errors_not_panics() {
    let mut b = SmartBattery::new(1000.0);
    assert!(matches!(
        b.draw(-1.0),
        Err(MeasurementError::NegativeDraw { .. })
    ));
    b.set_drawn(36.0).expect("increasing total is fine");
    assert!(matches!(
        b.set_drawn(1.0),
        Err(MeasurementError::BatteryRecharged { .. })
    ));
    assert!(matches!(
        SmartBattery::energy_between(10, 20),
        Err(MeasurementError::ReadingIncreased { .. })
    ));
    // The last consistent state survives every rejected mutation.
    assert_eq!(b.reading_mwh(), 990);
}

#[test]
fn batch_layer_converts_invariant_panics_to_slot_errors() {
    // Healthy experiments must come back Ok and bit-identical to a direct
    // run. (A panicking experiment yielding Err-per-slot is covered by the
    // runner's own tests; here we pin the Ok-slot contract.)
    let mk = || Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1400));
    let direct = mk().run();
    let slots = run_batch_checked(vec![mk(), mk()]);
    assert_eq!(slots.len(), 2);
    for slot in &slots {
        let r = slot.as_ref().expect("healthy experiment must succeed");
        assert_eq!(*r, direct);
    }
}
