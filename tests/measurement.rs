//! The measurement framework against ground truth: the paper's ACPI and
//! Baytech channels must agree with the meter within their physical error
//! budgets, and the error must shrink as runs lengthen (the reason the
//! paper iterates executions).

use powerpack::{acpi_measured_energy, baytech_energy, most_deviant_node, node_average_power};
use pwrperf::{DvsStrategy, EngineConfig, Experiment, Workload};
use sim_core::SimDuration;
use workloads::FtClass;

fn sampled_run(workload: Workload, mhz: u32) -> pwrperf::RunResult {
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_secs(1)),
        ..EngineConfig::default()
    };
    Experiment::new(workload, DvsStrategy::StaticMhz(mhz))
        .with_engine(engine)
        .run()
}

#[test]
fn acpi_measurement_tracks_ground_truth_on_long_runs() {
    let r = sampled_run(Workload::ft_b8(), 1400);
    assert!(r.duration_secs() > 120.0, "need a minutes-long run");
    let truth: f64 = r.per_node.iter().map(|n| n.total_j()).sum();
    let acpi: f64 = acpi_measured_energy(&r.samples, SimDuration::from_secs(18))
        .iter()
        .sum();
    let err = (acpi - truth).abs() / truth;
    // Refresh staleness bounds the error by ~refresh/duration plus
    // quantization; far under 15% on a two-minute run.
    assert!(err < 0.15, "ACPI error {err} (acpi {acpi}, truth {truth})");
    // And the instrument can only undercount (register refresh lags).
    assert!(acpi <= truth * 1.001);
}

#[test]
fn acpi_error_shrinks_with_run_length() {
    let short = sampled_run(Workload::ft_test(8), 1400);
    let long = sampled_run(Workload::ft_b8(), 1400);
    let rel_err = |r: &pwrperf::RunResult| {
        let truth: f64 = r.per_node.iter().map(|n| n.total_j()).sum();
        let acpi: f64 = acpi_measured_energy(&r.samples, SimDuration::from_secs(18))
            .iter()
            .sum();
        (acpi - truth).abs() / truth
    };
    let short_err = rel_err(&short);
    let long_err = rel_err(&long);
    assert!(
        long_err < short_err,
        "longer run should measure better: short {short_err}, long {long_err}"
    );
}

#[test]
fn baytech_and_acpi_cross_validate() {
    // The paper used the strip to verify the batteries. Both see the same
    // cluster; minute windows vs refresh boundaries differ in tails only.
    let r = sampled_run(Workload::ft_b8(), 1000);
    let acpi: f64 = acpi_measured_energy(&r.samples, SimDuration::from_secs(18))
        .iter()
        .sum();
    let strip: f64 = baytech_energy(&r.samples).iter().sum();
    assert!(acpi > 0.0 && strip > 0.0);
    let spread = (acpi - strip).abs() / acpi.max(strip);
    assert!(spread < 0.20, "channels disagree by {spread}");
}

#[test]
fn per_node_power_is_homogeneous_under_static_control() {
    let r = sampled_run(Workload::ft_b8(), 1200);
    let avgs = node_average_power(&r.samples);
    assert_eq!(avgs.len(), 8);
    let (node, dev) = most_deviant_node(&r.samples).unwrap();
    let mean: f64 = avgs.iter().sum::<f64>() / avgs.len() as f64;
    assert!(
        dev / mean < 0.05,
        "node {node} deviates {dev} W from mean {mean} W — cluster should be balanced"
    );
}

#[test]
fn tiny_runs_are_visibly_mismeasured() {
    // The flip side the paper designed around: a seconds-long run loses a
    // large share of its energy to refresh staleness.
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(500)),
        ..EngineConfig::default()
    };
    let r = Experiment::new(
        Workload::Ft {
            class: FtClass::Test,
            ranks: 8,
        },
        DvsStrategy::StaticMhz(1400),
    )
    .with_engine(engine)
    .run();
    assert!(r.duration_secs() < 30.0);
    let truth: f64 = r.per_node.iter().map(|n| n.total_j()).sum();
    let acpi: f64 = acpi_measured_energy(&r.samples, SimDuration::from_secs(18))
        .iter()
        .sum();
    assert!(
        acpi < truth * 0.95,
        "short run should undercount: acpi {acpi}, truth {truth}"
    );
}
