//! SweepStore invariants: fingerprint stability and injectivity over
//! single-field edits, bit-identical record round-trips, typed rejection
//! of corrupt records, and the warm-sweep zero-execution guarantee.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::OnceLock;

use cluster_sim::NodeConfig;
use mem_model::{MemHierarchy, WorkUnit};
use mpi_sim::{MsgCostModel, Program, ProgramBuilder};
use net_model::NetworkParams;
use proptest::prelude::*;
use pwrperf::store::{canonical_experiment_bytes, fingerprint_parts};
use pwrperf::{
    decode_run_result, encode_run_result, fingerprint_experiment, CapPolicy, DvsStrategy,
    EngineConfig, Experiment, Fault, FaultSpec, StoreError, Sweep, SweepStore, WaitPolicy,
    Workload,
};
use sim_core::SimDuration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwrperf-sweepstore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_experiment() -> Experiment {
    let engine = EngineConfig {
        metrics: true,
        sample_interval: Some(SimDuration::from_millis(5)),
        trace_capacity: 1 << 10,
        faults: FaultSpec {
            seed: 7,
            faults: vec![Fault::ComputeSlowdown {
                node: 1,
                factor: 1.5,
            }],
        },
        ..EngineConfig::default()
    };
    Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(1400)).with_engine(engine)
}

/// Pinned in a *separate process*: this constant was produced by the CLI
/// (`pwrperf sweep --dry-run`), so agreement here proves the digest has
/// no per-process state (ASLR, hash seeding, iteration order).
#[test]
fn fingerprint_is_stable_across_processes() {
    let exp = Experiment::new(Workload::ft_test(4), DvsStrategy::StaticMhz(1400));
    assert_eq!(
        fingerprint_experiment(&exp).to_hex(),
        "9060b427c316e0e45d9e6031da45fb7d"
    );
}

#[test]
fn canonical_bytes_are_deterministic() {
    let a = canonical_experiment_bytes(&base_experiment());
    let b = canonical_experiment_bytes(&base_experiment());
    assert_eq!(a, b);
    assert_eq!(
        fingerprint_experiment(&base_experiment()),
        fingerprint_experiment(&base_experiment())
    );
}

/// Every single-field edit — workload, strategy, each engine knob, one
/// fault entry, the fault seed, a cluster override — must move the key.
#[test]
fn any_single_field_edit_changes_the_key() {
    let mut variants: Vec<(&str, Experiment)> = vec![("base", base_experiment())];

    variants.push((
        "workload ranks",
        Experiment {
            workload: Workload::ft_test(4),
            ..base_experiment()
        },
    ));
    variants.push((
        "strategy kind",
        Experiment {
            strategy: DvsStrategy::StaticMhz(1400),
            ..base_experiment()
        },
    ));
    variants.push((
        "strategy frequency",
        Experiment {
            strategy: DvsStrategy::DynamicBaseMhz(1200),
            ..base_experiment()
        },
    ));

    let mut e = base_experiment();
    e.engine.eager_threshold += 1;
    variants.push(("eager threshold", e));

    let mut e = base_experiment();
    e.engine.wait_policy = WaitPolicy::PollThenBlock(SimDuration::from_millis(50));
    variants.push(("wait policy", e));

    let mut e = base_experiment();
    e.engine.sample_interval = Some(SimDuration::from_millis(10));
    variants.push(("sample interval value", e));

    let mut e = base_experiment();
    e.engine.sample_interval = None;
    variants.push(("sample interval presence", e));

    let mut e = base_experiment();
    e.engine.trace_capacity += 1;
    variants.push(("trace capacity", e));

    let mut e = base_experiment();
    e.engine.metrics = false;
    variants.push(("metrics flag", e));

    // Causal recording changes the stored payload, so it must key.
    let mut e = base_experiment();
    e.engine.causal = true;
    variants.push(("causal flag", e));

    let mut e = base_experiment();
    e.engine.faults.seed += 1;
    variants.push(("fault seed", e));

    // One float inside one fault entry.
    let mut e = base_experiment();
    e.engine.faults.faults = vec![Fault::ComputeSlowdown {
        node: 1,
        factor: 1.5 + 1e-9,
    }];
    variants.push(("fault entry float", e));

    let mut e = base_experiment();
    e.engine.faults.faults = vec![Fault::ComputeSlowdown {
        node: 0,
        factor: 1.5,
    }];
    variants.push(("fault entry node", e));

    let mut e = base_experiment();
    e.engine.faults.faults.clear();
    variants.push(("fault entry removed", e));

    // Cluster overrides: presence, and a single parameter within.
    variants.push((
        "node config present",
        base_experiment().with_node_config(NodeConfig::inspiron_8600()),
    ));
    let mut node = NodeConfig::inspiron_8600();
    node.power.base_w += 0.125;
    variants.push((
        "node config base power",
        base_experiment().with_node_config(node),
    ));
    variants.push((
        "network present",
        base_experiment().with_network(NetworkParams::catalyst_2950_100m()),
    ));
    let network = NetworkParams {
        link_bw_bps: 1e9,
        ..NetworkParams::catalyst_2950_100m()
    };
    variants.push(("network bandwidth", base_experiment().with_network(network)));

    // Interconnect shape, and one parameter within it.
    let mut e = base_experiment();
    e.engine.topology = pwrperf::Topology::FatTree {
        radix: 4,
        oversub: 2.0,
    };
    variants.push(("fat-tree topology", e));
    let mut e = base_experiment();
    e.engine.topology = pwrperf::Topology::FatTree {
        radix: 4,
        oversub: 4.0,
    };
    variants.push(("fat-tree oversub", e));

    // The power-cap controller: budget and division policy both key.
    variants.push((
        "power cap strategy",
        Experiment {
            strategy: DvsStrategy::PowerCap {
                watts: 120,
                policy: CapPolicy::Uniform,
            },
            ..base_experiment()
        },
    ));
    variants.push((
        "power cap watts",
        Experiment {
            strategy: DvsStrategy::PowerCap {
                watts: 110,
                policy: CapPolicy::Uniform,
            },
            ..base_experiment()
        },
    ));
    variants.push((
        "power cap policy",
        Experiment {
            strategy: DvsStrategy::PowerCap {
                watts: 120,
                policy: CapPolicy::Redistribute,
            },
            ..base_experiment()
        },
    ));

    let keys: Vec<(&str, String)> = variants
        .iter()
        .map(|(label, e)| (*label, fingerprint_experiment(e).to_hex()))
        .collect();
    let distinct: BTreeSet<&str> = keys.iter().map(|(_, k)| k.as_str()).collect();
    assert_eq!(
        distinct.len(),
        keys.len(),
        "fingerprint collision among single-field edits: {keys:#?}"
    );
}

/// Regression (the requested-vs-resolved frequency bug): `StaticMhz(5000)`
/// clamps to the 1400 MHz ladder top, so it must hit the cache entry a
/// `StaticMhz(1400)` sweep filled — one record, zero re-execution.
#[test]
fn requests_resolving_to_the_same_point_share_a_cache_entry() {
    let dir = tmp_dir("resolved-share");
    let mut store = SweepStore::open(&dir).unwrap();
    let workloads = vec![Workload::ft_test(2)];

    let canonical = Sweep::grid(
        workloads.clone(),
        vec![DvsStrategy::StaticMhz(1400)],
        Vec::new(),
        Vec::new(),
    );
    let cold = canonical.run(&mut store, Some(1)).unwrap();
    assert_eq!(cold.report.engine_runs, 1);

    let requested = Sweep::grid(
        workloads,
        vec![DvsStrategy::StaticMhz(5000)],
        Vec::new(),
        Vec::new(),
    );
    let warm = requested.run(&mut store, Some(1)).unwrap();
    assert_eq!(
        warm.report.engine_runs, 0,
        "an off-ladder request resolving to a cached point must not re-run"
    );
    assert_eq!(warm.report.cache_hits, 1);
    assert_eq!(warm.results, cold.results);
    let _ = std::fs::remove_dir_all(&dir);
}

fn ring_programs(cost: MsgCostModel) -> Vec<Program> {
    (0..2)
        .map(|rank| {
            let mut b =
                ProgramBuilder::with_cost(rank, 2, cost.clone(), MemHierarchy::pentium_m_1400());
            b.compute(WorkUnit::pure_cpu(1.0e7));
            let peer = 1 - rank;
            b.sendrecv(peer, 64 * 1024, 0, peer, 64 * 1024, 0);
            b.build()
        })
        .collect()
}

/// The message-cost model is baked into the lowered ops, so nudging one
/// of its floats must change the fingerprint of the built programs.
#[test]
fn msg_cost_model_float_changes_the_key() {
    let engine = EngineConfig::default();
    let strategy = DvsStrategy::StaticMhz(800);
    let base = fingerprint_parts(&ring_programs(MsgCostModel::default()), strategy, &engine);
    let nudged = MsgCostModel {
        cycles_per_byte: MsgCostModel::default().cycles_per_byte * (1.0 + 1e-12),
        ..MsgCostModel::default()
    };
    assert_ne!(
        base,
        fingerprint_parts(&ring_programs(nudged), strategy, &engine)
    );
    // Same model, same key.
    assert_eq!(
        base,
        fingerprint_parts(&ring_programs(MsgCostModel::default()), strategy, &engine)
    );
}

/// One stored record (built once; reused by the corruption proptests).
fn golden_record() -> &'static (pwrperf::Fingerprint, Vec<u8>) {
    static RECORD: OnceLock<(pwrperf::Fingerprint, Vec<u8>)> = OnceLock::new();
    RECORD.get_or_init(|| {
        let dir = tmp_dir("golden-record");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = base_experiment();
        let fp = fingerprint_experiment(&exp);
        store.store(fp, &exp.run()).unwrap();
        let bytes = std::fs::read(store.record_path(fp)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (fp, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Encode → decode → re-encode is the identity on both sides, for
    /// runs with every observability combination armed.
    #[test]
    fn run_result_round_trip_is_bit_identical(
        mhz_idx in 0usize..3,
        metrics in any::<bool>(),
        causal in any::<bool>(),
        sample_ms in prop_oneof![Just(None), Just(Some(2u64)), Just(Some(7u64))],
        trace_pow in prop_oneof![Just(0usize), Just(6), Just(16)],
        faulty in any::<bool>(),
    ) {
        let mhz = [600, 1000, 1400][mhz_idx];
        let faults = if faulty {
            FaultSpec {
                seed: 3,
                faults: vec![Fault::ComputeSlowdown { node: 0, factor: 1.3 }],
            }
        } else {
            FaultSpec::default()
        };
        let engine = EngineConfig {
            metrics,
            causal,
            sample_interval: sample_ms.map(SimDuration::from_millis),
            trace_capacity: if trace_pow == 0 { 0 } else { 1 << trace_pow },
            faults,
            ..EngineConfig::default()
        };
        let result = Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(mhz))
            .with_engine(engine)
            .run();
        let bytes = encode_run_result(&result);
        let decoded = decode_run_result(&bytes).expect("round trip decodes");
        prop_assert_eq!(&decoded, &result);
        prop_assert_eq!(encode_run_result(&decoded), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single byte of a record makes the load a typed error
    /// (never a panic, never silently wrong data).
    #[test]
    fn any_corrupted_byte_is_rejected(pos_frac in 0.0f64..1.0, flip in 1u8..255) {
        let (fp, bytes) = golden_record();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= flip;

        let dir = tmp_dir(&format!("corrupt-{pos}-{flip}"));
        let mut store = SweepStore::open(&dir).unwrap();
        let path = store.record_path(*fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, &corrupted).unwrap();
        let outcome = store.load(*fp);
        prop_assert!(
            matches!(
                outcome,
                Err(StoreError::Corrupt { .. })
                    | Err(StoreError::Version { .. })
                    | Err(StoreError::Decode { .. })
            ),
            "byte {pos} xor {flip:#x} must be rejected, got {outcome:?}"
        );
        prop_assert_eq!(store.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every strict prefix of a record is rejected as truncated.
    #[test]
    fn any_truncation_is_rejected(keep_frac in 0.0f64..1.0) {
        let (fp, bytes) = golden_record();
        let keep = ((bytes.len() as f64 * keep_frac) as usize).min(bytes.len() - 1);

        let dir = tmp_dir(&format!("trunc-{keep}"));
        let mut store = SweepStore::open(&dir).unwrap();
        let path = store.record_path(*fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, &bytes[..keep]).unwrap();
        prop_assert!(matches!(
            store.load(*fp),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The headline guarantee: a re-run sweep executes nothing and returns
/// bit-identical results; a partially cached sweep (a killed run) only
/// executes the gap.
#[test]
fn warm_sweep_executes_nothing_and_resumes_after_partial_cache() {
    let dir = tmp_dir("warm");
    let mut store = SweepStore::open(&dir).unwrap();
    let faults = FaultSpec {
        seed: 11,
        faults: vec![Fault::DvfsLatency {
            node: 0,
            factor: 2.0,
        }],
    };
    let full = Sweep::grid(
        vec![Workload::ft_test(2)],
        vec![
            DvsStrategy::StaticMhz(1400),
            DvsStrategy::StaticMhz(800),
            DvsStrategy::DynamicBaseMhz(1400),
        ],
        vec![0.0],
        vec![FaultSpec::default(), faults.clone()],
    );

    // "Killed" first attempt: only the clean-fault half ran.
    let partial = Sweep::grid(
        vec![Workload::ft_test(2)],
        full.strategies.clone(),
        vec![0.0],
        vec![FaultSpec::default()],
    );
    let first = partial.run(&mut store, Some(1)).unwrap();
    assert_eq!(first.report.engine_runs, 3);

    // Resume: the full grid only executes the missing faulted half.
    let resumed = full.run(&mut store, Some(1)).unwrap();
    assert_eq!(resumed.report.cache_hits, 3);
    assert_eq!(resumed.report.engine_runs, 3);
    assert_eq!(resumed.results.len(), 6);

    // Warm: zero executions, bit-identical to the resumed pass.
    let warm = full.run(&mut store, Some(1)).unwrap();
    assert_eq!(warm.report.engine_runs, 0, "warm sweep must not execute");
    assert_eq!(warm.report.cache_hits, 6);
    assert_eq!(warm.report.corrupt_records, 0);
    assert_eq!(warm.results, resumed.results);
    assert_eq!(warm.report.metrics().counter("sweep.engine_runs"), Some(0));

    // And the direct engine agrees with what the cache replays.
    let direct: Vec<_> = full.experiments().iter().map(Experiment::run).collect();
    assert_eq!(warm.results, direct);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sweep that trips over a corrupt record heals it: the record is
/// re-run, overwritten, and the next pass is clean.
#[test]
fn sweep_heals_corrupt_records() {
    let dir = tmp_dir("heal");
    let mut store = SweepStore::open(&dir).unwrap();
    let sweep = Sweep::grid(
        vec![Workload::ft_test(2)],
        vec![DvsStrategy::StaticMhz(1400), DvsStrategy::StaticMhz(600)],
        Vec::new(),
        Vec::new(),
    );
    let cold = sweep.run(&mut store, Some(1)).unwrap();

    // Smash one record's payload.
    let job = &sweep.plan(&store).jobs[0];
    let path = store.record_path(job.fingerprint);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    std::fs::write(&path, &bytes).unwrap();

    let healed = sweep.run(&mut store, Some(1)).unwrap();
    assert_eq!(healed.report.corrupt_records, 1);
    assert_eq!(
        healed.report.engine_runs, 1,
        "only the smashed record re-runs"
    );
    assert_eq!(healed.results, cold.results);

    let warm = sweep.run(&mut store, Some(1)).unwrap();
    assert_eq!(warm.report.engine_runs, 0);
    assert_eq!(warm.report.corrupt_records, 0);
    assert_eq!(warm.results, cold.results);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the tmp-file write race: all writers used the same
/// `<hex>.tmp` sibling, so two concurrent `store()` calls for one
/// fingerprint could interleave create/write/rename and a concurrent
/// reader could observe a torn record. With unique tmp names
/// (pid + per-process counter) and `sync_all` before the atomic rename,
/// N threads hammering put/get on one fingerprint must never observe a
/// corrupt record.
#[test]
fn concurrent_put_get_on_one_fingerprint_never_tears() {
    let dir = tmp_dir("hammer");
    let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800));
    let fp = fingerprint_experiment(&exp);
    let result = exp.run();
    // Seed once so readers always have something to find.
    SweepStore::open(&dir).unwrap().store(fp, &result).unwrap();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for writer in 0..4 {
            let dir = &dir;
            let result = &result;
            handles.push(scope.spawn(move || {
                let mut store = SweepStore::open(dir).unwrap();
                for _ in 0..25 {
                    store.store(fp, result).unwrap();
                    let _ = writer;
                }
            }));
        }
        for _ in 0..4 {
            let dir = &dir;
            let result = &result;
            handles.push(scope.spawn(move || {
                let mut store = SweepStore::open(dir).unwrap();
                for _ in 0..50 {
                    match store.load(fp) {
                        Ok(Some(seen)) => assert_eq!(&seen, result, "torn record observed"),
                        Ok(None) => panic!("record vanished mid-rename"),
                        Err(e) => panic!("reader saw a corrupt record: {e}"),
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });

    // No tmp droppings left behind, and the record still loads clean.
    let strays: Vec<_> = std::fs::read_dir(dir.join(&fp.to_hex()[..2]))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .collect();
    assert!(strays.is_empty(), "stale tmp files: {strays:?}");
    assert_eq!(
        SweepStore::open(&dir).unwrap().load(fp).unwrap(),
        Some(result)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
