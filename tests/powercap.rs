//! Power-cap controller invariants: the cluster budget is honoured at
//! every sample instant, an infinite budget is inert (bit-identical to
//! the uncontrolled run), capped runs are bit-identical at every shard
//! count, and — the PR's acceptance criterion — runtime redistribution
//! under a fixed cap beats every cap-feasible uniform `StaticMhz`
//! point on a load-imbalanced workload.

use cluster_sim::NodeConfig;
use edp_metrics::{weighted_ed2p, DELTA_HPC};
use proptest::prelude::*;
use pwrperf::{
    power_cap_default_sample, CapPolicy, DvsStrategy, EngineConfig, Experiment, FaultSpec,
    RunResult, Topology, Workload,
};

const RANKS: usize = 4;

fn sampled_engine(faults: FaultSpec) -> EngineConfig {
    EngineConfig {
        sample_interval: Some(power_cap_default_sample()),
        faults,
        ..EngineConfig::default()
    }
}

fn run_capped(watts: u32, policy: CapPolicy, engine: EngineConfig) -> RunResult {
    Experiment::new(
        Workload::ft_test(RANKS),
        DvsStrategy::PowerCap { watts, policy },
    )
    .with_engine(engine)
    .run()
}

/// Highest instantaneous cluster draw over all sample rows.
fn peak_sampled_w(result: &RunResult) -> f64 {
    result
        .samples
        .iter()
        .map(|s| s.node_power_w.iter().sum::<f64>())
        .fold(0.0, f64::max)
}

/// The lowest budget the controller can honour: every rank parked at
/// the ladder floor, charged at worst-case activity.
fn floor_watts() -> f64 {
    let config = NodeConfig::inspiron_8600();
    RANKS as f64
        * config
            .power
            .max_node_power_w(config.ladder.point(config.ladder.lowest()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hard guarantee: for any feasible budget, policy, and degree
    /// of load imbalance, the summed sampled node power never exceeds
    /// the cap at any sample instant.
    #[test]
    fn cap_is_never_exceeded_at_any_sample_instant(
        headroom in 0u32..60,
        redistribute in any::<bool>(),
        slowdown in 1u32..6,
    ) {
        let watts = floor_watts().ceil() as u32 + headroom;
        let policy = if redistribute { CapPolicy::Redistribute } else { CapPolicy::Uniform };
        let faults = FaultSpec::parse(&format!("slow:0:{slowdown}.0")).unwrap();
        let result = run_capped(watts, policy, sampled_engine(faults));
        prop_assert!(!result.samples.is_empty(), "capped runs must sample");
        for sample in &result.samples {
            let total: f64 = sample.node_power_w.iter().sum();
            prop_assert!(
                total <= watts as f64 + 1e-9,
                "cap {watts} W exceeded at t={:?}: sampled {total} W",
                sample.time,
            );
        }
    }
}

#[test]
fn infinite_cap_is_bit_identical_to_the_uncontrolled_run() {
    // A budget no allocation can violate must leave the controller
    // inert: zero decisions, zero extra transitions, and a RunResult
    // equal bit-for-bit to the uncontrolled static-performance run
    // under the same sampling config.
    let uncontrolled = Experiment::new(Workload::ft_test(RANKS), DvsStrategy::StaticMhz(1400))
        .with_engine(sampled_engine(FaultSpec::default()))
        .run();
    for policy in [CapPolicy::Uniform, CapPolicy::Redistribute] {
        let capped = run_capped(1_000_000, policy, sampled_engine(FaultSpec::default()));
        assert_eq!(capped, uncontrolled, "{policy:?}: results differ");
        assert_eq!(
            capped.total_energy_j().to_bits(),
            uncontrolled.total_energy_j().to_bits(),
            "{policy:?}: energy differs at the bit level",
        );
        assert_eq!(capped.transitions, vec![0; RANKS]);
    }
}

#[test]
fn capped_runs_are_bit_identical_at_any_shard_count() {
    // Controller decisions ride the same (time, seq)-ordered apply path
    // as everything else; sharded planning must not perturb them.
    let make = |shards: usize, topology: Topology| {
        let engine = EngineConfig {
            metrics: true,
            trace_capacity: 1 << 12,
            topology,
            shards,
            ..sampled_engine(FaultSpec::parse("slow:0:5.0").unwrap())
        };
        run_capped(80, CapPolicy::Redistribute, engine)
    };
    let sequential = make(1, Topology::Flat);
    for shards in [2, 8] {
        let sharded = make(shards, Topology::Flat);
        assert_eq!(sequential, sharded, "{shards} shards");
        assert_eq!(
            sequential.total_energy_j().to_bits(),
            sharded.total_energy_j().to_bits()
        );
    }
    let fat_tree = Topology::FatTree {
        radix: 2,
        oversub: 2.0,
    };
    let ft_sequential = make(1, fat_tree);
    let ft_sharded = make(8, fat_tree);
    assert_eq!(ft_sequential, ft_sharded, "fat-tree, 8 shards");
}

#[test]
fn redistribution_beats_every_feasible_uniform_static_under_the_cap() {
    // The acceptance criterion: on a load-imbalanced workload (rank 0
    // slowed 5x) under an 80 W cluster budget (~81% of the 99 W
    // uncapped peak), reclaiming budget from communication-blocked
    // ranks and granting it to the straggler must achieve strictly
    // better weighted ED^2P than the best uniform StaticMhz point that
    // fits the same budget under worst-case accounting.
    let cap = 80u32;
    let faults = FaultSpec::parse("slow:0:5.0").unwrap();

    // Normalization base: uncapped static 1400, same faults (how the
    // paper normalizes every E/D column).
    let base = Experiment::new(Workload::ft_test(RANKS), DvsStrategy::StaticMhz(1400))
        .with_engine(sampled_engine(faults.clone()))
        .run();
    let (e0, d0) = (base.total_energy_j(), base.duration_secs());
    assert!(
        peak_sampled_w(&base) > cap as f64,
        "the cap must actually bind: uncapped peak {} W <= {cap} W",
        peak_sampled_w(&base),
    );

    let config = NodeConfig::inspiron_8600();
    let mut best_uniform = f64::INFINITY;
    let mut feasible = 0usize;
    for point in config.ladder.points() {
        if RANKS as f64 * config.power.max_node_power_w(*point) > cap as f64 {
            continue;
        }
        feasible += 1;
        let r = Experiment::new(
            Workload::ft_test(RANKS),
            DvsStrategy::StaticMhz(point.mhz()),
        )
        .with_engine(sampled_engine(faults.clone()))
        .run();
        let w = weighted_ed2p(r.total_energy_j() / e0, r.duration_secs() / d0, DELTA_HPC);
        best_uniform = best_uniform.min(w);
    }
    assert!(feasible >= 1, "no ladder point fits the {cap} W budget");

    let redist = run_capped(cap, CapPolicy::Redistribute, sampled_engine(faults.clone()));
    assert!(
        peak_sampled_w(&redist) <= cap as f64 + 1e-9,
        "redistribute breached its own budget",
    );
    let w_redist = weighted_ed2p(
        redist.total_energy_j() / e0,
        redist.duration_secs() / d0,
        DELTA_HPC,
    );
    assert!(
        w_redist < best_uniform,
        "redistribution must strictly beat the best feasible uniform static: \
         redistribute wED2P {w_redist:.4} vs best uniform {best_uniform:.4}",
    );

    // The uniform *policy* pins the whole cluster at that same best
    // feasible point, so it must not beat redistribution either.
    let uniform = run_capped(cap, CapPolicy::Uniform, sampled_engine(faults));
    assert!(peak_sampled_w(&uniform) <= cap as f64 + 1e-9);
    let w_uniform = weighted_ed2p(
        uniform.total_energy_j() / e0,
        uniform.duration_secs() / d0,
        DELTA_HPC,
    );
    assert!(
        w_redist < w_uniform,
        "redistribute {w_redist:.4} must beat uniform policy {w_uniform:.4}",
    );
}
