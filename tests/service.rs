//! Sweep service end-to-end: daemon over a real socket, wire-protocol
//! robustness (mirroring the store codec's truncation/corruption
//! proptests), in-flight miss dedupe across concurrent clients, and the
//! headline invariants — a warm store answers with **zero** engine
//! executions, and daemon results are bit-identical to a direct
//! [`Sweep::run`] of the same grid.

use std::path::PathBuf;

use proptest::prelude::*;
use pwrperf::service::wire::{read_request, write_request};
use pwrperf::{Client, ProtocolError, Request, Server, ServerConfig, SweepSpec, SweepStore};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pwrperf-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid(strategies: &[&str]) -> SweepSpec {
    SweepSpec {
        workloads: vec!["ft-test4".to_string()],
        strategies: strategies.iter().map(|s| s.to_string()).collect(),
        deltas: vec![0.0, 0.2],
        ..SweepSpec::default()
    }
}

/// Bind a daemon on an ephemeral TCP port and serve it from a thread.
fn spawn_daemon(dir: &PathBuf, config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let store = SweepStore::open(dir).unwrap();
    let server = Server::bind_tcp(store, config, "127.0.0.1:0").unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, handle)
}

#[test]
fn daemon_sweep_is_bit_identical_and_warm_queries_execute_nothing() {
    let dir = tmp_dir("roundtrip");
    let (addr, daemon) = spawn_daemon(&dir, ServerConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let spec = grid(&["static-600", "static-800", "cpuspeed"]);

    // Cold: every cell executes, once.
    let cold = client.submit_sweep(&spec).unwrap();
    assert_eq!(cold.report.jobs, 3);
    assert_eq!(cold.report.engine_runs, 3);
    assert_eq!(cold.report.cache_hits, 0);
    assert_eq!(cold.results.len(), 3);

    // Bit-identity: the daemon's results are exactly what a local
    // uncached run of the same named grid produces.
    let direct = spec.resolve().unwrap().run_uncached(Some(2));
    assert_eq!(cold.results, direct.results);

    // Warm: zero executions, byte-identical results.
    let warm = client.submit_sweep(&spec).unwrap();
    assert_eq!(warm.report.engine_runs, 0, "warm store must not execute");
    assert_eq!(warm.report.cache_hits, 3);
    assert_eq!(warm.results, cold.results);

    // Query: the whole wED²P table from the store, nothing executed.
    let reply = client.query(&spec).unwrap();
    assert_eq!(reply.rows, 3);
    assert_eq!(reply.missing, 0);
    assert!(reply.table.contains("wed2p[0.2]"));
    let status = client.status().unwrap();
    assert_eq!(status.counter("service.engine_runs"), Some(3));
    assert_eq!(status.counter("service.queries"), Some(1));
    assert_eq!(status.counter("service.inflight"), Some(0));

    // A query over a grid the store has never seen counts missing cells
    // without running them.
    let unseen = grid(&["static-1000"]);
    let reply = client.query(&unseen).unwrap();
    assert_eq!((reply.rows, reply.missing), (0, 1));
    let status = client.status().unwrap();
    assert_eq!(
        status.counter("service.engine_runs"),
        Some(3),
        "queries never execute"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_dedupe_inflight_misses() {
    let dir = tmp_dir("inflight");
    let (addr, daemon) = spawn_daemon(&dir, ServerConfig::default());
    let spec = grid(&["static-600", "static-800", "static-1000", "static-1200"]);

    // Several clients race the same cold grid; the executor's claim
    // protocol must hand every overlapping miss to exactly one engine
    // execution, whichever connection gets there first.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    Client::connect_tcp(&addr)
                        .unwrap()
                        .submit_sweep(&spec)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for outcome in &outcomes {
        assert_eq!(outcome.results, outcomes[0].results, "all clients agree");
        assert_eq!(
            outcome.report.cache_hits + outcome.report.engine_runs,
            outcome.report.jobs
        );
    }

    let mut client = Client::connect_tcp(&addr).unwrap();
    let status = client.status().unwrap();
    assert_eq!(
        status.counter("service.engine_runs"),
        Some(4),
        "4 unique cells, 16 requested: each executed exactly once"
    );
    assert_eq!(status.counter("service.inflight"), Some(0));
    client.shutdown().unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_rejects_bad_specs_with_typed_remote_errors() {
    let dir = tmp_dir("badspec");
    let (addr, daemon) = spawn_daemon(&dir, ServerConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let bad = SweepSpec {
        workloads: vec!["warp-core".to_string()],
        strategies: vec!["static-800".to_string()],
        ..SweepSpec::default()
    };
    match client.submit_sweep(&bad) {
        Err(ProtocolError::Remote(msg)) => assert!(msg.contains("warp-core"), "{msg}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    // The connection stays usable after a rejected spec.
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wire round-tripping is name-agnostic, so the pool mixes real grid
/// names with strings no parser accepts.
const NAMES: &[&str] = &[
    "ft-test4",
    "mem-micro",
    "static-600",
    "cap-80-redist",
    "seed:7,rate:0.25",
    "fat-tree:k=4",
    "not-a-real-name",
    "",
];

fn names(indices: Vec<usize>) -> Vec<String> {
    indices.into_iter().map(|i| NAMES[i].to_string()).collect()
}

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    (
        (
            proptest::collection::vec(0usize..NAMES.len(), 0..4),
            proptest::collection::vec(0usize..NAMES.len(), 0..4),
            proptest::collection::vec(-1.0f64..1.0, 0..3),
            proptest::collection::vec(0usize..NAMES.len(), 0..3),
        ),
        (0usize..NAMES.len(), any::<bool>(), 0usize..64),
    )
        .prop_map(
            |((workloads, strategies, deltas, fault_specs), (topology, causal, shards))| {
                SweepSpec {
                    workloads: names(workloads),
                    strategies: names(strategies),
                    deltas,
                    fault_specs: names(fault_specs),
                    topology: NAMES[topology].to_string(),
                    causal,
                    shards,
                }
            },
        )
}

proptest! {
    /// Mirrors the store codec's round-trip proptest: any spec survives
    /// the wire bit-for-bit.
    #[test]
    fn any_sweep_spec_round_trips_the_wire(spec in arb_spec()) {
        for request in [Request::SubmitSweep(spec.clone()), Request::Query(spec)] {
            let mut frame = Vec::new();
            write_request(&mut frame, &request).unwrap();
            let back = read_request(&mut &frame[..]).unwrap();
            prop_assert_eq!(back, request.clone());
        }
    }

    /// Mirrors `any_truncation_is_rejected`: a frame cut anywhere is a
    /// typed I/O error, never a hang or a partial decode.
    #[test]
    fn any_frame_truncation_is_typed(keep_frac in 0.0f64..1.0) {
        let request = Request::SubmitSweep(grid(&["static-800", "cpuspeed"]));
        let mut frame = Vec::new();
        write_request(&mut frame, &request).unwrap();
        let keep = ((frame.len() as f64) * keep_frac) as usize;
        prop_assume!(keep < frame.len());
        let err = read_request(&mut &frame[..keep]).unwrap_err();
        prop_assert!(matches!(err, ProtocolError::Io(_)), "cut at {} gave {:?}", keep, err);
    }

    /// Mirrors `any_corrupted_byte_is_rejected`: flip any byte of a
    /// frame and the reader reports a typed error — magic, version,
    /// kind, length, checksum, or payload decode, never silence.
    #[test]
    fn any_frame_corruption_is_typed(pos_frac in 0.0f64..1.0, flip in 1u8..255) {
        let request = Request::SubmitSweep(grid(&["static-800", "cpuspeed"]));
        let mut frame = Vec::new();
        write_request(&mut frame, &request).unwrap();
        let pos = (((frame.len() - 1) as f64) * pos_frac) as usize;
        frame[pos] ^= flip;
        let result = read_request(&mut &frame[..]);
        prop_assert!(result.is_err(), "flip {:#04x} at {} decoded fine", flip, pos);
    }
}
