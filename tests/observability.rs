//! PowerScope end-to-end guarantees: deterministic exports, zero behaviour
//! change under instrumentation, and honest trace/metric accounting.

use pwrperf::{metrics_ndjson, perfetto_json, DvsStrategy, EngineConfig, Experiment, Workload};
use sim_core::SimDuration;

/// The golden scenario: small enough to keep the reference file readable,
/// rich enough to exercise every record type (phase slices, messages,
/// frequency changes, power counters).
fn scenario() -> Experiment {
    Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(1400)).with_engine(
        EngineConfig {
            trace_capacity: 4096,
            sample_interval: Some(SimDuration::from_millis(25)),
            metrics: true,
            ..EngineConfig::default()
        },
    )
}

/// The Perfetto export must be byte-for-byte reproducible across runs and
/// across hosts (simulated timestamps only, integer formatting). The
/// reference bytes live in `tests/golden/`; regenerate with
/// `BLESS=1 cargo test --test observability`.
#[test]
fn perfetto_export_matches_golden_bytes() {
    let json = perfetto_json(&scenario().run());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ft_test2_dyn1400.perfetto.json"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file (BLESS=1 to regenerate)");
    assert_eq!(
        json, golden,
        "Perfetto export drifted from tests/golden/ft_test2_dyn1400.perfetto.json \
         (BLESS=1 cargo test --test observability to re-bless a deliberate change)"
    );
}

#[test]
fn exports_are_deterministic_across_runs() {
    let a = scenario().run();
    let b = scenario().run();
    assert_eq!(perfetto_json(&a), perfetto_json(&b));
    assert_eq!(metrics_ndjson(&a), metrics_ndjson(&b));
    // And re-exporting the same result is a pure function.
    assert_eq!(perfetto_json(&a), perfetto_json(&a));
}

/// Instrumentation is observation only: every simulated quantity must be
/// bit-identical with metrics + tracing on or off.
#[test]
fn instrumentation_never_changes_simulation_bits() {
    let base = Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1200));
    let plain = base.clone().run();
    let observed = base
        .with_engine(EngineConfig {
            trace_capacity: 1 << 16,
            metrics: true,
            ..EngineConfig::default()
        })
        .run();
    assert_eq!(plain.duration, observed.duration);
    assert_eq!(
        plain.total_energy_j().to_bits(),
        observed.total_energy_j().to_bits(),
        "energy must match at the bit level"
    );
    assert_eq!(plain.transitions, observed.transitions);
    assert_eq!(plain.breakdown, observed.breakdown);
    assert_eq!(plain.events, observed.events);
    assert_eq!(plain.freq_residency, observed.freq_residency);
}

/// `RunResult::events` (the throughput figure) and the metrics registry
/// count the same thing through independent code paths.
#[test]
fn dispatched_counter_matches_events_figure() {
    let result = scenario().run();
    let metrics = result.metrics.as_ref().expect("metrics enabled");
    assert_eq!(
        metrics.counter("engine.events.dispatched"),
        Some(result.events)
    );
    assert_eq!(
        metrics.counter("engine.trace.recorded"),
        Some(result.trace.len() as u64)
    );
    assert_eq!(
        metrics.counter("engine.trace.dropped"),
        Some(result.trace_dropped)
    );
}

/// Under capacity pressure the trace keeps the most recent `capacity`
/// events and counts every discard: retained + dropped covers exactly the
/// record attempts an unbounded run observes.
#[test]
fn bounded_trace_accounts_for_every_event() {
    let run_with_capacity = |cap: usize| {
        Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(EngineConfig {
                trace_capacity: cap,
                ..EngineConfig::default()
            })
            .run()
    };
    let full = run_with_capacity(1 << 20);
    assert_eq!(full.trace_dropped, 0, "huge capacity must not drop");
    let total = full.trace.len() as u64;
    assert!(total > 16, "scenario too small to pressure the trace");

    let cap = 16;
    let squeezed = run_with_capacity(cap);
    assert_eq!(squeezed.trace.len(), cap, "ring keeps exactly `capacity`");
    assert_eq!(
        squeezed.trace.len() as u64 + squeezed.trace_dropped,
        total,
        "retained + dropped must cover every record attempt"
    );
    // The ring keeps the *most recent* events: its contents are the tail
    // of the unbounded trace.
    assert_eq!(
        squeezed.trace.as_slice(),
        &full.trace[full.trace.len() - cap..]
    );
}
