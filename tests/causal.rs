//! Causal tracing end-to-end guarantees: the critical path and the
//! per-rank time/energy attribution are exact (integer identities, not
//! approximations), deterministic at any shard count, and recording them
//! never perturbs a single simulated bit.

use pwrperf::{analyze_text, DvsStrategy, EngineConfig, Experiment, Workload};
use sim_core::SimDuration;

fn causal_run(workload: Workload, strategy: DvsStrategy) -> pwrperf::RunResult {
    Experiment::new(workload, strategy)
        .with_engine(EngineConfig {
            causal: true,
            ..EngineConfig::default()
        })
        .run()
}

/// The critical path can never be longer than the makespan, and because
/// the backward walk is contiguous in time it lands exactly on it.
#[test]
fn critical_path_never_exceeds_the_makespan() {
    let cases = [
        (Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400)),
        (Workload::ft_test(8), DvsStrategy::StaticMhz(800)),
        (Workload::cg_b8(), DvsStrategy::StaticMhz(1400)),
        (Workload::mg_b8(), DvsStrategy::DynamicBaseMhz(1200)),
        (Workload::transpose_paper(), DvsStrategy::StaticMhz(1000)),
    ];
    for (workload, strategy) in cases {
        let label = workload.label();
        let result = causal_run(workload, strategy);
        let a = result.attribution.as_ref().expect("causal run attributes");
        assert!(
            a.critical_path <= a.makespan,
            "{label}: critical path {:?} exceeds makespan {:?}",
            a.critical_path,
            a.makespan
        );
        assert_eq!(
            a.critical_path, a.makespan,
            "{label}: the contiguous backward walk must land on the makespan"
        );
        // The path's own split covers it exactly: residency + comm == length.
        let residency: SimDuration = a.ranks.iter().map(|r| r.cp_residency).sum();
        assert_eq!(residency + a.cp_comm, a.critical_path, "{label}");
        assert_eq!(a.makespan, result.duration, "{label}");
    }
}

/// A single-rank serial program has no communication to blame: the whole
/// critical path is that rank's own residency.
#[test]
fn single_rank_serial_critical_path_is_the_makespan() {
    for workload in [Workload::Swim, Workload::Mgrid] {
        let label = workload.label();
        let result = causal_run(workload, DvsStrategy::StaticMhz(1400));
        let a = result.attribution.as_ref().expect("causal run attributes");
        assert_eq!(a.critical_path, a.makespan, "{label}");
        assert_eq!(a.cp_comm, SimDuration::ZERO, "{label}: no network flight");
        assert_eq!(a.cp_hops, 0, "{label}: no message hops");
        assert_eq!(a.ranks.len(), 1, "{label}");
        assert_eq!(a.ranks[0].cp_residency, a.makespan, "{label}");
        assert_eq!(a.ranks[0].comm, SimDuration::ZERO, "{label}");
    }
}

/// The compute/comm/blocked split is an integer identity against the
/// engine's own per-rank breakdown — picosecond-exact, every rank.
#[test]
fn attribution_split_sums_to_the_engine_breakdown_exactly() {
    let cases = [
        (Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1400)),
        (Workload::ft_test(8), DvsStrategy::StaticMhz(600)),
        (Workload::cg_b8(), DvsStrategy::DynamicBaseMhz(1000)),
    ];
    for (workload, strategy) in cases {
        let label = workload.label();
        let result = causal_run(workload, strategy);
        let a = result.attribution.as_ref().expect("causal run attributes");
        assert_eq!(a.ranks.len(), result.breakdown.len(), "{label}");
        for (rank, (row, breakdown)) in a.ranks.iter().zip(&result.breakdown).enumerate() {
            assert_eq!(
                row.wall(),
                breakdown.total(),
                "{label} rank {rank}: compute+comm+blocked must equal the \
                 engine breakdown total exactly"
            );
        }
        // Energy attribution covers the whole cluster: per-rank splits plus
        // idle tails re-sum to the run's total joules (float round-trip,
        // same summation order, so exact equality is too strict — bound it).
        let attributed: f64 = a
            .ranks
            .iter()
            .map(|r| r.compute_j + r.comm_j + r.blocked_j + r.idle_tail_j)
            .sum();
        let total = result.total_energy_j();
        assert!(
            (attributed - total).abs() <= total * 1e-9,
            "{label}: attributed {attributed} J vs total {total} J"
        );
    }
}

/// Sharded planning reorders float *precomputation*, never dispatch: the
/// causal log and the attribution built from it are bit-identical at any
/// shard count.
#[test]
fn attribution_is_identical_at_any_shard_count() {
    let run_with_shards = |shards: usize| {
        Experiment::new(Workload::ft_test(8), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(EngineConfig {
                causal: true,
                shards,
                ..EngineConfig::default()
            })
            .run()
    };
    let one = run_with_shards(1);
    for shards in [2, 8] {
        let many = run_with_shards(shards);
        assert_eq!(
            one.causal, many.causal,
            "causal log drifted at {shards} shards"
        );
        assert_eq!(
            one.attribution, many.attribution,
            "attribution drifted at {shards} shards"
        );
        assert_eq!(one, many, "full result drifted at {shards} shards");
    }
}

/// Causal recording is observation only: every simulated quantity must be
/// bit-identical with the recorder on or off.
#[test]
fn causal_recording_never_changes_simulation_bits() {
    let base = Experiment::new(Workload::ft_test(4), DvsStrategy::DynamicBaseMhz(1200));
    let plain = base.clone().run();
    let observed = base
        .with_engine(EngineConfig {
            causal: true,
            ..EngineConfig::default()
        })
        .run();
    assert!(plain.causal.is_none() && plain.attribution.is_none());
    assert_eq!(plain.duration, observed.duration);
    assert_eq!(
        plain.total_energy_j().to_bits(),
        observed.total_energy_j().to_bits(),
        "energy must match at the bit level"
    );
    assert_eq!(plain.transitions, observed.transitions);
    assert_eq!(plain.breakdown, observed.breakdown);
    assert_eq!(plain.events, observed.events);
    assert_eq!(plain.freq_residency, observed.freq_residency);
}

/// The rendered analyze table for a fixed scenario is pinned byte-for-byte.
/// Regenerate with `BLESS=1 cargo test --test causal`.
#[test]
fn analyze_table_matches_golden_bytes() {
    let workload = Workload::ft_test(4);
    let strategy = DvsStrategy::StaticMhz(1400);
    let result = causal_run(workload.clone(), strategy);
    let a = result.attribution.as_ref().expect("causal run attributes");
    let table = analyze_text(&workload.label(), &strategy.label(), a);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/ft_test4_stat1400.analyze.txt"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &table).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file (BLESS=1 to regenerate)");
    assert_eq!(
        table, golden,
        "analyze table drifted from tests/golden/ft_test4_stat1400.analyze.txt \
         (BLESS=1 cargo test --test causal to re-bless a deliberate change)"
    );
}

/// A record that never carried a causal log — a plain run, round-tripped
/// through the store codec the way `sweep --store` persists it — must
/// produce the typed "causal log absent" error from the analysis entry
/// point, never a panic.
#[test]
fn causal_free_record_yields_a_typed_absent_error() {
    use pwrperf::{decode_run_result, encode_run_result, try_analyze_text, AnalyzeError};
    let workload = Workload::ft_test(4);
    let strategy = DvsStrategy::StaticMhz(1400);
    let plain = Experiment::new(workload.clone(), strategy).run();
    let loaded = decode_run_result(&encode_run_result(&plain)).expect("codec round-trip");
    assert!(loaded.causal.is_none() && loaded.attribution.is_none());
    let err = try_analyze_text(&workload.label(), &strategy.label(), &loaded)
        .expect_err("causal-free record must not analyze");
    assert_eq!(err, AnalyzeError::CausalAbsent);
    assert!(
        err.to_string().contains("causal log absent"),
        "error must name the failure: {err}"
    );

    // And the causal run itself analyzes fine through the same path.
    let causal = causal_run(workload.clone(), strategy);
    assert!(try_analyze_text(&workload.label(), &strategy.label(), &causal).is_ok());
}
