#!/usr/bin/env bash
# Local mirror of the CI `fmt` + `lint` jobs: formatting, clippy with
# warnings denied, and the project-specific simlint pass (see DESIGN.md
# §11 and §16). Run from anywhere inside the repo; exits non-zero on the
# first failing gate.
#
# simlint runs with its incremental cache (target/simlint-cache.json):
# an unchanged tree after a clean pass is a fingerprint check and zero
# re-parses. Pass LINT_NO_CACHE=1 to force the cold full pass CI runs.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

echo "== rustfmt (check) =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint (deny findings) =="
SIMLINT_FLAGS=(--deny)
if [[ "${LINT_NO_CACHE:-0}" == "1" ]]; then
  SIMLINT_FLAGS+=(--no-cache)
fi
cargo run -q -p simlint -- "${SIMLINT_FLAGS[@]}"

echo "lint: all gates passed"
