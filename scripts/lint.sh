#!/usr/bin/env bash
# Local mirror of the CI `fmt` + `lint` jobs: formatting, clippy with
# warnings denied, and the project-specific simlint pass (see DESIGN.md
# §11). Run from anywhere inside the repo; exits non-zero on the first
# failing gate.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

echo "== rustfmt (check) =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint (deny findings) =="
cargo run -q -p simlint -- --deny

echo "lint: all gates passed"
