#!/usr/bin/env bash
# Benchmark the simulator and emit a JSON report.
#
# Measures, for the current tree:
#   * `all_figures` end-to-end wall clock (median / min of N runs) and
#     peak RSS — the whole-paper regeneration that the batch runner and
#     engine hot path both feed into;
#   * engine throughput in simulated events per wall-clock second
#     (examples/bench_throughput.rs), untraced, with PowerScope
#     instrumentation on, and with the causal recorder on, plus the
#     traced/untraced and causal/untraced overhead ratios;
#   * causal overhead at scale: a 256-rank class-C FT iteration through
#     the real binary with and without `--causal` (the acceptance gate is
#     < 10% overhead enabled);
#   * per-scenario Criterion timings from the `engine` bench;
#   * SweepStore cold-vs-warm `all_figures --store` wall clock: the cold
#     pass executes and fills the result cache, the warm pass replays it
#     (identical output bytes, near-zero engine work).
#
#   * simlint analyzer wall clock, cold (--no-cache) and warm (the
#     content-hash incremental cache) — the static-analysis cost the
#     lint gate adds to a developer loop;
#
# Usage: scripts/bench.sh [output.json]    (default BENCH_PR9.json)
#        scripts/bench.sh scale [output.json]   (default BENCH_PR6.json)
#        scripts/bench.sh cap [output.json]     (default BENCH_PR8.json)
#        scripts/bench.sh service [output.json] (default BENCH_PR10.json)
#
# The `scale` mode runs examples/bench_scale.rs instead: one class-C FT
# iteration at 256/1024/4096 ranks on an oversubscribed fat-tree, each
# rank count at 1/2/8 intra-run shards, asserting the RunResults are
# bit-identical and reporting events/sec per configuration.
#
# The `cap` mode runs examples/bench_powercap.rs: the power-cap
# acceptance benchmark (imbalanced ft-test4 under an 80 W budget),
# asserting the cap held and that the redistribute policy beats the
# best cap-feasible uniform static on weighted ED^2P.
#
# The `service` mode runs examples/bench_service.rs: a pwrperfd daemon
# on loopback TCP draining a BENCH_SERVICE_JOBS-cell grid (default
# 10000) cold, then the warm re-sweep and store-only query paths,
# asserting zero warm engine executions and bit-identical replay.
#
# Runs are sequential on an otherwise idle machine; prefer the median
# over the mean, and compare medians across trees measured back-to-back.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "cap" ]]; then
  OUT="${2:-BENCH_PR8.json}"
  cargo build --release -q --example bench_powercap
  ./target/release/examples/bench_powercap | tee "$OUT"
  exit 0
fi

if [[ "${1:-}" == "service" ]]; then
  OUT="${2:-BENCH_PR10.json}"
  cargo build --release -q --example bench_service
  ./target/release/examples/bench_service | tee "$OUT"
  exit 0
fi

if [[ "${1:-}" == "scale" ]]; then
  OUT="${2:-BENCH_PR6.json}"
  MAX_RANKS="${BENCH_SCALE_MAX_RANKS:-4096}"
  cargo build --release -q --example bench_scale
  ./target/release/examples/bench_scale "$MAX_RANKS" | tee "$OUT"
  exit 0
fi

OUT="${1:-BENCH_PR9.json}"
RUNS="${BENCH_RUNS:-30}"

cargo build --release -q -p pwrperf-bench --bin all_figures
cargo build --release -q --example bench_throughput
cargo build --release -q -p pwrperf-cli
cargo build --release -q -p simlint

THROUGHPUT="$(./target/release/examples/bench_throughput 100)"
THROUGHPUT_TRACED="$(./target/release/examples/bench_throughput 100 traced)"
THROUGHPUT_CAUSAL="$(./target/release/examples/bench_throughput 100 causal)"
BENCH="$(cargo bench -q -p pwrperf-bench --bench engine 2>/dev/null | grep 'time:' || true)"

RUNS="$RUNS" OUT="$OUT" THROUGHPUT="$THROUGHPUT" \
  THROUGHPUT_TRACED="$THROUGHPUT_TRACED" THROUGHPUT_CAUSAL="$THROUGHPUT_CAUSAL" \
  BENCH="$BENCH" python3 - <<'EOF'
import json, os, re, resource, statistics, subprocess, time

runs = int(os.environ["RUNS"])
binary = "./target/release/all_figures"

subprocess.run([binary], stdout=subprocess.DEVNULL)  # warm-up
wall = []
for _ in range(runs):
    t0 = time.perf_counter()
    subprocess.run([binary], stdout=subprocess.DEVNULL)
    wall.append(time.perf_counter() - t0)
maxrss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

tp = dict(
    line.split(": ") for line in os.environ["THROUGHPUT"].splitlines() if ": " in line
)
tpt = dict(
    line.split(": ")
    for line in os.environ["THROUGHPUT_TRACED"].splitlines()
    if ": " in line
)
tpc = dict(
    line.split(": ")
    for line in os.environ["THROUGHPUT_CAUSAL"].splitlines()
    if ": " in line
)
criterion = {
    m[1].strip(): int(m[2])
    for m in re.finditer(r"(.+?)\s+time: (\d+) ns/iter", os.environ["BENCH"])
}

# SweepStore cold vs warm: same regeneration, first filling the result
# cache, then replaying it. Output bytes must be identical.
import shutil, tempfile
store = tempfile.mkdtemp(prefix="pwrperf-bench-store-")
t0 = time.perf_counter()
cold = subprocess.run([binary, "--store", store], capture_output=True).stdout
cold_s = time.perf_counter() - t0
t0 = time.perf_counter()
warm = subprocess.run([binary, "--store", store], capture_output=True).stdout
warm_s = time.perf_counter() - t0
assert cold == warm, "warm all_figures output must be byte-identical to cold"
shutil.rmtree(store, ignore_errors=True)

# Causal overhead at scale: one 256-rank class-C FT iteration through the
# real binary, with and without the causal recorder. Median of 5 runs;
# the acceptance gate for blame analysis is < 10% overhead enabled.
cli = "./target/release/pwrperf"
scale_args = ["run", "-w", "ft-scale-256", "-s", "static-1400"]
def median_wall(extra):
    walls = []
    for _ in range(5):
        t0 = time.perf_counter()
        subprocess.run([cli, *scale_args, *extra], stdout=subprocess.DEVNULL)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)
subprocess.run([cli, *scale_args], stdout=subprocess.DEVNULL)  # warm-up
scale_plain_s = median_wall([])
scale_causal_s = median_wall(["--causal"])

# simlint analyzer cost: the cold full pass CI runs, then the warm
# cached pass the developer loop sees (fingerprint hit, zero re-parses).
lint = "./target/release/simlint"
def lint_wall(args):
    t0 = time.perf_counter()
    r = subprocess.run([lint, *args], stdout=subprocess.DEVNULL)
    assert r.returncode == 0, f"simlint {args} found violations"
    return time.perf_counter() - t0
lint_cold_s = lint_wall(["--deny", "--no-cache"])
lint_wall(["--deny"])  # fill the cache
lint_warm_s = lint_wall(["--deny"])

report = {
    "all_figures": {
        "runs": runs,
        "wall_ms_median": round(statistics.median(wall) * 1000, 2),
        "wall_ms_min": round(min(wall) * 1000, 2),
        "peak_rss_kb": maxrss_kb,
    },
    "engine_throughput": {
        "events": int(tp["events"]),
        "wall_secs": float(tp["wall_secs"]),
        "events_per_sec": int(float(tp["events_per_sec"])),
    },
    "engine_throughput_traced": {
        "events": int(tpt["events"]),
        "wall_secs": float(tpt["wall_secs"]),
        "events_per_sec": int(float(tpt["events_per_sec"])),
        # Wall-clock cost of full PowerScope instrumentation (metrics
        # registry + 64k-event trace) relative to the untraced run.
        "overhead_ratio": round(
            float(tp["events_per_sec"]) / float(tpt["events_per_sec"]), 4
        ),
    },
    "engine_throughput_causal": {
        "events": int(tpc["events"]),
        "wall_secs": float(tpc["wall_secs"]),
        "events_per_sec": int(float(tpc["events_per_sec"])),
        # Wall-clock cost of the causal recorder (dependency log +
        # attribution solve) relative to the plain run.
        "overhead_ratio": round(
            float(tp["events_per_sec"]) / float(tpc["events_per_sec"]), 4
        ),
    },
    "ft_scale_256_causal": {
        "plain_ms_median": round(scale_plain_s * 1000, 2),
        "causal_ms_median": round(scale_causal_s * 1000, 2),
        "overhead_ratio": round(scale_causal_s / scale_plain_s, 4),
    },
    "simlint": {
        "cold_ms": round(lint_cold_s * 1000, 2),
        "warm_ms": round(lint_warm_s * 1000, 2),
        "warm_speedup": round(lint_cold_s / lint_warm_s, 2),
    },
    "criterion_engine_ns_per_iter": criterion,
    "sweepstore_all_figures": {
        "cold_ms": round(cold_s * 1000, 2),
        "warm_ms": round(warm_s * 1000, 2),
        "warm_speedup": round(cold_s / warm_s, 2),
        "outputs_identical": True,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF
